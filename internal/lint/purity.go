package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
)

// FuncRef names one function in one package, in the "Func" /
// "(Recv).Func" / "(*Recv).Func" spec syntax FindFunc resolves.
type FuncRef struct {
	Pkg  string
	Func string
}

// Purity proves the run store's central assumption: that a Result is a pure
// function of its Config, so serving a cache hit is indistinguishable from
// rerunning the simulation. The pass classifies every function reachable
// from the run entry points on the effect lattice of effects.go (pure <
// read-only < impure) by propagating local effect facts over the
// cross-package call graph, and reports each reachable impurity — a write
// to a package-level var, a wall-clock or rand read, filesystem/network
// I/O, map-iteration order escaping, an atomic store, or select/channel/
// goroutine scheduling nondeterminism — with the witness chain that reaches
// it.
//
// Accepted effects (an observability counter, the sweep's worker fan-out)
// are annotated in place with //lint:allow purity and a reason; CertifyPurity
// then records every such exemption, with its reason and witness chain, in
// the machine-readable purity certificates that CI pins against a golden
// (cmd/wormlint -certify-purity).
//
// Stated boundary: calls through plain function values — the Config.OnTick/
// OnSample/OnDeliver hooks — have no static callee and are not followed.
// That boundary is sound for the cache contract because hooks are
// observe-only by construction: hookescape proves they receive deep copies
// (or documented borrows), so a hook can watch a run but not steer it.
type Purity struct {
	// Entries are the certified entry points; every impurity reachable from
	// any of them is a finding unless annotated.
	Entries []FuncRef
}

// NewPurity certifies the four run entry points: the bare engine run, the
// cache-consulting run, and the two sweep drivers.
func NewPurity() *Purity {
	const core = "wormsim/internal/core"
	return &Purity{Entries: []FuncRef{
		{Pkg: core, Func: "Run"},
		{Pkg: core, Func: "RunCached"},
		{Pkg: core, Func: "Sweep"},
		{Pkg: core, Func: "SweepReplicated"},
	}}
}

// Name returns "purity".
func (*Purity) Name() string { return "purity" }

// Doc describes the pass.
func (*Purity) Doc() string {
	return "prove runs are pure functions of their configs: no unannotated effect reachable from Run/RunCached/Sweep/SweepReplicated"
}

// RunProgram reports every impurity reachable from the entry points.
// Findings at the same site for the same source are deduplicated across
// entries (the sweep drivers reach almost everything Run reaches).
func (pu *Purity) RunProgram(prog *Program) []Finding {
	effects := prog.effectsIndex()
	var out []Finding
	type site struct {
		file   string
		line   int
		source string
	}
	seen := make(map[site]bool)
	for _, entry := range pu.Entries {
		p := prog.Package(entry.Pkg)
		if p == nil {
			continue // single-package run: the entry's package is not loaded
		}
		root := prog.FindFunc(entry.Pkg, entry.Func)
		if root == nil {
			out = append(out, p.finding(pu.Name(), p.Files[0],
				"purity entry point %s not found in %s; update the pass configuration", entry.Func, entry.Pkg))
			continue
		}
		reach := prog.Graph().ReachableFrom(root)
		forEachReachableDecl(prog, reach, func(q *Package, fd *ast.FuncDecl, fn *types.Func) {
			fe := effects[fn]
			if fe == nil || len(fe.impurities) == 0 {
				return
			}
			chain := reach.Chain(fn, q)
			for _, imp := range fe.impurities {
				k := site{imp.pos.Filename, imp.pos.Line, imp.source}
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, Finding{
					Pos:  imp.pos,
					Pass: pu.Name(),
					Msg: fmt.Sprintf("%s on the certified-pure path (reachable via %s); a cached Result must replay exactly — remove the effect or //lint:allow purity with a reason",
						imp.detail, chain),
				})
			}
		})
	}
	return out
}

// forEachReachableDecl visits every reached declared function in
// deterministic order, scanning the program's cached declaration list.
func forEachReachableDecl(prog *Program, reach *Reach, visit func(*Package, *ast.FuncDecl, *types.Func)) {
	for _, e := range prog.funcDecls() {
		if reach.Set[e.Fn] {
			visit(e.Pkg, e.Decl, e.Fn)
		}
	}
}

// PurityCertificates is the artifact cmd/wormlint -certify-purity emits and
// CI pins against internal/lint/testdata/purity_certificates.golden.json:
// one certificate per run entry point, plus a content signature so a
// certificate set can be referenced compactly.
type PurityCertificates struct {
	Schema  string              `json:"schema"`
	Module  string              `json:"module"`
	Entries []PurityCertificate `json:"entries"`
	// Signature is sha256 over the canonical JSON of Entries.
	Signature string `json:"signature"`
}

// PuritySchema versions the certificate format.
const PuritySchema = "wormsim/purity-certificates/v1"

// PurityCertificate is the proof record for one entry point: whether it is
// pure modulo annotated exemptions, the classified frontier of every
// reachable function, and each exemption with its witness chain.
type PurityCertificate struct {
	// Entry is the certified function, "pkgpath.Func".
	Entry string `json:"entry"`
	// Pure is true when no unannotated impurity is reachable: every effect
	// on the entry's call graph is either absent or a recorded exemption.
	Pure bool `json:"pure"`
	// ReachableFunctions counts the declared functions on the entry's call
	// graph (the frontier's total size).
	ReachableFunctions int `json:"reachable_functions"`
	// Frontier classifies every reachable function. "pure" compute only
	// from their arguments; "read_only" observe shared state or call a
	// function with a recorded effect; "impure" carry a local effect
	// themselves (each of which is listed under exemptions or violations).
	Frontier PurityFrontier `json:"frontier"`
	// Exemptions are the annotated, accepted impurities on this entry's
	// call graph — the "modulo" in "pure modulo annotated exemptions".
	Exemptions []PurityEffect `json:"exemptions"`
	// Violations are unannotated impurities; a certificate with violations
	// fails certification.
	Violations []PurityEffect `json:"violations,omitempty"`
}

// PurityFrontier groups the reachable functions by inferred effect class.
type PurityFrontier struct {
	Pure     []string `json:"pure"`
	ReadOnly []string `json:"read_only"`
	Impure   []string `json:"impure"`
}

// PurityEffect is one concrete effect site: where it is, what kind of
// impurity, why it is accepted (exemptions), and how the entry reaches it.
type PurityEffect struct {
	Func    string `json:"func"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Source  string `json:"source"`
	Detail  string `json:"detail"`
	Reason  string `json:"reason,omitempty"`
	Witness string `json:"witness"`
}

// CertifyPurity runs the effect analysis over the loaded program and builds
// the certificate set for pu's entry points. Unlike the lint pass — which
// skips entries whose package is outside a partial load — certification
// demands the whole module: a missing entry point is an error, not a clean
// certificate. File paths are recorded relative to modRoot with forward
// slashes.
func CertifyPurity(prog *Program, pu *Purity, modRoot string) (*PurityCertificates, error) {
	effects := prog.effectsIndex()
	g := prog.Graph()

	// Transitive classification, entry-independent: a function is read-only
	// if it observes shared state itself or can reach a function with a
	// recorded effect; impure if it carries a local effect.
	genImp := make(map[*types.Func]bool, len(effects))
	genRead := make(map[*types.Func]bool, len(effects))
	for fn, fe := range effects {
		genImp[fn] = len(fe.impurities) > 0
		genRead[fn] = fe.readsShared
	}
	impUp := g.PropagateUp(genImp)
	readUp := g.PropagateUp(genRead)

	certs := &PurityCertificates{
		Schema: PuritySchema,
		Module: prog.modulePrefix(),
	}
	for _, entry := range pu.Entries {
		entryPkg := prog.Package(entry.Pkg)
		if entryPkg == nil {
			return nil, fmt.Errorf("lint: purity entry package %s not loaded (certification requires the whole module)", entry.Pkg)
		}
		root := prog.FindFunc(entry.Pkg, entry.Func)
		if root == nil {
			return nil, fmt.Errorf("lint: purity entry point %s not found in %s", entry.Func, entry.Pkg)
		}
		reach := g.ReachableFrom(root)
		cert := PurityCertificate{
			Entry:      entry.Pkg + "." + entry.Func,
			Pure:       true,
			Exemptions: []PurityEffect{},
		}
		forEachReachableDecl(prog, reach, func(q *Package, fd *ast.FuncDecl, fn *types.Func) {
			cert.ReachableFunctions++
			name := q.Path + "." + funcDeclName(fd)
			fe := effects[fn]
			switch {
			case fe != nil && len(fe.impurities) > 0:
				cert.Frontier.Impure = append(cert.Frontier.Impure, name)
				witness := reach.Chain(fn, entryPkg)
				for _, imp := range fe.impurities {
					eff := PurityEffect{
						Func:    name,
						File:    relTo(modRoot, imp.pos.Filename),
						Line:    imp.pos.Line,
						Source:  imp.source,
						Detail:  imp.detail,
						Witness: witness,
					}
					if prog.Allowed(pu.Name(), imp.pos) {
						eff.Reason = prog.AllowReason(pu.Name(), imp.pos)
						cert.Exemptions = append(cert.Exemptions, eff)
					} else {
						cert.Pure = false
						cert.Violations = append(cert.Violations, eff)
					}
				}
			case impUp[fn] || readUp[fn]:
				cert.Frontier.ReadOnly = append(cert.Frontier.ReadOnly, name)
			default:
				cert.Frontier.Pure = append(cert.Frontier.Pure, name)
			}
		})
		sort.Strings(cert.Frontier.Pure)
		sort.Strings(cert.Frontier.ReadOnly)
		sort.Strings(cert.Frontier.Impure)
		sortEffects(cert.Exemptions)
		sortEffects(cert.Violations)
		certs.Entries = append(certs.Entries, cert)
	}

	canon, err := json.Marshal(certs.Entries)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(canon)
	certs.Signature = "sha256:" + hex.EncodeToString(sum[:])
	return certs, nil
}

// sortEffects orders effect records by file, line, source and detail.
func sortEffects(effs []PurityEffect) {
	sort.Slice(effs, func(i, j int) bool {
		a, b := effs[i], effs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Detail < b.Detail
	})
}

// relTo renders name relative to root with forward slashes, so the
// certificate is machine-independent.
func relTo(root, name string) string {
	if root == "" {
		return filepath.ToSlash(name)
	}
	if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}
