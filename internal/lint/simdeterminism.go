package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SimDeterminism enforces the paper's reproducibility methodology on the
// simulation core: every run must be a pure function of its configuration
// and seeds (Boppana & Chalasani re-seed independent streams per sampling
// period, and the sweep/figure pipelines assume bit-identical reruns). The
// pass forbids
//
//   - importing math/rand or math/rand/v2 (use wormsim/internal/rng, whose
//     PCG streams are seeded, splittable and reproducible),
//   - calling time.Now, time.Since or time.Until (wall-clock reads; inject
//     a clock like telemetry.Progress does when one is genuinely needed),
//   - ranging over a map (iteration order is randomized per run; iterate a
//     sorted key slice instead),
//
// in two scopes: everywhere inside the target packages (the declared
// simulation core), and — via the program call graph — inside any function
// in any package reachable from the root entry points (the engine's cycle
// step, and the observatory's result-serving handlers), including through
// devirtualized interface calls. A helper in an untargeted package becomes
// part of the determinism contract the moment a root can reach it.
//
// Intentional uses — order-independent reductions over maps, telemetry
// wall-clock reads behind an injected clock — are annotated in place with
// //lint:allow simdeterminism and a reason.
type SimDeterminism struct {
	// Targets are the import paths the pass applies to in full; a path
	// matches exactly. Packages outside the simulation core (CLIs, rng
	// itself) are free to use the clock except where a root reaches them.
	Targets []string
	// Roots name the entry points for the reachability scope; empty
	// disables it (single-package fixture runs). All roots feed one
	// reachability query, so a function reachable from any of them is in
	// scope.
	Roots []FuncRef
}

// NewSimDeterminism targets the simulation-core packages named in the
// determinism contract — everything that runs between a Config and a Result
// — plus the figure/SVG renderers, and roots the reachability scope at the
// engine's cycle entry point and the observatory's result-serving handlers.
func NewSimDeterminism() *SimDeterminism {
	const observatory = "wormsim/internal/observatory"
	return &SimDeterminism{
		Targets: []string{
			"wormsim/internal/network",
			"wormsim/internal/routing",
			"wormsim/internal/topology",
			"wormsim/internal/traffic",
			"wormsim/internal/congestion",
			"wormsim/internal/core",
			"wormsim/internal/message",
			"wormsim/internal/cdg",
			// telemetry feeds golden-trace tests, so it is held to the same
			// standard; its one deliberate wall-clock read (the Progress ETA,
			// behind an injectable clock) is annotated in place.
			"wormsim/internal/telemetry",
			// runstore sits on the sweep's cache-hit branch: a Lookup that
			// read the clock or ranged a map would break the bit-identical
			// warm-rerun guarantee, so the whole package is in scope.
			"wormsim/internal/runstore",
			// viz renders the paper's figures and the comparison overlays;
			// a nondeterministic renderer would defeat the golden-SVG tests
			// and make identical runs paint different pictures.
			"wormsim/internal/viz",
			// forensics runs inside the engine's cycle loop and its summary
			// is golden-pinned; blame attribution must be a pure function of
			// the run.
			"wormsim/internal/forensics",
		},
		Roots: []FuncRef{
			{Pkg: "wormsim/internal/network", Func: "(*Network).Step"},
			// The batch engine's lockstep sweep: every replica must stay a
			// pure function of its config and seed or batch/scalar
			// bit-identity breaks.
			{Pkg: "wormsim/internal/network", Func: "(*BatchNetwork).Step"},
			// The observatory's result-serving paths: what a client reads
			// from /api/runs, /api/compare and /compare.svg must be a
			// deterministic function of the stored results.
			{Pkg: observatory, Func: "(*API).handleRuns"},
			{Pkg: observatory, Func: "(*API).handleRun"},
			{Pkg: observatory, Func: "(*API).handleCompare"},
			{Pkg: observatory, Func: "(*API).handleCompareSVG"},
		},
	}
}

// Name returns "simdeterminism".
func (*SimDeterminism) Name() string { return "simdeterminism" }

// Doc describes the pass.
func (*SimDeterminism) Doc() string {
	return "forbid math/rand, wall-clock reads and map iteration in the simulation core and everything the engine reaches"
}

// RunProgram reports determinism violations in targeted packages and in
// functions reachable from the root entry points.
func (s *SimDeterminism) RunProgram(prog *Program) []Finding {
	var out []Finding
	for _, p := range prog.Pkgs {
		if s.targets(p.Path) {
			out = append(out, s.checkPackage(p)...)
		}
	}

	var roots []*types.Func
	for _, ref := range s.Roots {
		target := prog.Package(ref.Pkg)
		if target == nil {
			continue // single-package run: this root's package is not loaded
		}
		root := prog.FindFunc(ref.Pkg, ref.Func)
		if root == nil {
			out = append(out, target.finding(s.Name(), target.Files[0],
				"determinism root %s not found in %s; update the pass configuration", ref.Func, ref.Pkg))
			continue
		}
		roots = append(roots, root)
	}
	if len(roots) == 0 {
		return out
	}
	reach := prog.Graph().ReachableFrom(roots...)
	for _, p := range prog.Pkgs {
		if s.targets(p.Path) {
			continue // already checked in full above
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok || !reach.Set[fn] {
					continue
				}
				chain := reach.Chain(fn, p)
				out = append(out, s.checkBody(p, fd.Body, " (reachable via "+chain+")")...)
			}
		}
	}
	return out
}

// checkPackage applies the full-package scope: imports plus every body.
func (s *SimDeterminism) checkPackage(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.finding(s.Name(), imp,
					"import %s is nondeterministic across runs; use wormsim/internal/rng streams", path))
			}
		}
		out = append(out, s.checkBody(p, f, "")...)
	}
	return out
}

// checkBody flags wall-clock reads, map iteration and math/rand calls in
// one subtree; ctx annotates reachability-scope findings with the witness
// call chain.
func (s *SimDeterminism) checkBody(p *Package, root ast.Node, ctx string) []Finding {
	var out []Finding
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := pkgFuncCall(p, n, "time"); ok {
				switch name {
				case "Now", "Since", "Until":
					out = append(out, p.finding(s.Name(), n,
						"time.%s reads the wall clock%s; inject a clock or //lint:allow simdeterminism with a reason", name, ctx))
				}
			}
			if name, ok := pkgFuncCall(p, n, "math/rand"); ok {
				out = append(out, p.finding(s.Name(), n,
					"math/rand.%s is nondeterministic across runs%s; use wormsim/internal/rng streams", name, ctx))
			} else if name, ok := pkgFuncCall(p, n, "math/rand/v2"); ok {
				out = append(out, p.finding(s.Name(), n,
					"math/rand/v2.%s is nondeterministic across runs%s; use wormsim/internal/rng streams", name, ctx))
			}
		case *ast.RangeStmt:
			t := p.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				out = append(out, p.finding(s.Name(), n,
					"iteration over map %s has randomized order%s; iterate sorted keys or //lint:allow simdeterminism with a reason", t.String(), ctx))
			}
		}
		return true
	})
	return out
}

func (s *SimDeterminism) targets(path string) bool {
	for _, t := range s.Targets {
		if path == t {
			return true
		}
	}
	return false
}
