package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SimDeterminism enforces the paper's reproducibility methodology on the
// simulation core: every run must be a pure function of its configuration
// and seeds (Boppana & Chalasani re-seed independent streams per sampling
// period, and the sweep/figure pipelines assume bit-identical reruns). In
// the target packages the pass forbids
//
//   - importing math/rand or math/rand/v2 (use wormsim/internal/rng, whose
//     PCG streams are seeded, splittable and reproducible),
//   - calling time.Now, time.Since or time.Until (wall-clock reads; inject
//     a clock like telemetry.Progress does when one is genuinely needed),
//   - ranging over a map (iteration order is randomized per run; iterate a
//     sorted key slice instead).
//
// Intentional uses — order-independent reductions over maps, telemetry
// wall-clock reads behind an injected clock — are annotated in place with
// //lint:allow simdeterminism and a reason.
type SimDeterminism struct {
	// Targets are the import paths the pass applies to; a path matches
	// exactly. Packages outside the simulation core (CLIs, rng itself,
	// telemetry) are free to use the clock.
	Targets []string
}

// NewSimDeterminism targets the simulation-core packages named in the
// determinism contract: everything that runs between a Config and a Result.
func NewSimDeterminism() *SimDeterminism {
	return &SimDeterminism{Targets: []string{
		"wormsim/internal/network",
		"wormsim/internal/routing",
		"wormsim/internal/topology",
		"wormsim/internal/traffic",
		"wormsim/internal/congestion",
		"wormsim/internal/core",
		"wormsim/internal/message",
		"wormsim/internal/cdg",
		// telemetry feeds golden-trace tests, so it is held to the same
		// standard; its one deliberate wall-clock read (the Progress ETA,
		// behind an injectable clock) is annotated in place.
		"wormsim/internal/telemetry",
	}}
}

// Name returns "simdeterminism".
func (*SimDeterminism) Name() string { return "simdeterminism" }

// Doc describes the pass.
func (*SimDeterminism) Doc() string {
	return "forbid math/rand, wall-clock reads and map iteration in the simulation core"
}

// Run reports determinism violations in targeted packages.
func (s *SimDeterminism) Run(p *Package) []Finding {
	if !s.targets(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.finding(s.Name(), imp,
					"import %s is nondeterministic across runs; use wormsim/internal/rng streams", path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := pkgFuncCall(p, n, "time"); ok {
					switch name {
					case "Now", "Since", "Until":
						out = append(out, p.finding(s.Name(), n,
							"time.%s reads the wall clock; inject a clock or //lint:allow simdeterminism with a reason", name))
					}
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					out = append(out, p.finding(s.Name(), n,
						"iteration over map %s has randomized order; iterate sorted keys or //lint:allow simdeterminism with a reason", t.String()))
				}
			}
			return true
		})
	}
	return out
}

func (s *SimDeterminism) targets(path string) bool {
	for _, t := range s.Targets {
		if path == t {
			return true
		}
	}
	return false
}

// pkgFuncCall reports whether call is pkg.Func on the package named pkgPath
// (resolving through import aliases) and returns the function name.
func pkgFuncCall(p *Package, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
