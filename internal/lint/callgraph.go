package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CallGraph is the program's static call graph. An edge fn → callee exists
// when fn's body (including nested function literals, which run when fn
// runs them) references callee directly, or makes an interface or
// method-value call that conservatively devirtualizes to callee.
//
// Devirtualization is by method-set matching over the loaded module: a call
// through interface method I.M gains an edge to T.M for every named type T
// in the program whose method set (value or pointer) implements I. Calls
// through plain function values (fields, parameters) have no static callee
// and are not followed — passes that care about them (lockscope,
// hookescape) treat such calls as opaque hook invocations instead.
// Stdlib-mediated callbacks (sort.Slice invoking its less function) are
// likewise not followed, but the function literal itself is still scanned
// as part of its enclosing function.
type CallGraph struct {
	prog *Program
	// Out maps each declared function to its callees, deduplicated, in
	// first-reference source order (deterministic).
	Out map[*types.Func][]*types.Func
}

type devirtKey struct {
	iface *types.Interface
	name  string
}

// buildCallGraph walks every declared body once, resolving direct
// references and devirtualizing interface methods.
func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{prog: prog, Out: make(map[*types.Func][]*types.Func, len(prog.decls))}
	devirt := make(map[devirtKey][]*types.Func)
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Out[fn] = g.collectEdges(p, fd.Body, devirt)
			}
		}
	}
	return g
}

// collectEdges gathers the callees referenced by one body in source order.
func (g *CallGraph) collectEdges(p *Package, body *ast.BlockStmt, devirt map[devirtKey][]*types.Func) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		out = append(out, fn)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		tf, ok := p.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := tf.Type().(*types.Signature)
		if !ok {
			return true
		}
		if recv := sig.Recv(); recv != nil {
			if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
				// Interface method (called or taken as a method value):
				// conservatively add every module implementation.
				for _, impl := range g.implementers(iface, tf, devirt) {
					add(impl)
				}
				return true
			}
		}
		// A direct reference: a static call, or a function/method value
		// that may be invoked later — either way its body is reachable.
		if _, ok := g.prog.decls[tf]; !ok {
			tf = tf.Origin() // instantiated generic → its declaration
		}
		if _, ok := g.prog.decls[tf]; ok {
			add(tf)
		}
		return true
	})
	return out
}

// implementers returns the declared concrete methods that a call to the
// interface method m may dispatch to, matched over every named type in the
// program whose value or pointer method set implements the interface.
func (g *CallGraph) implementers(iface *types.Interface, m *types.Func, cache map[devirtKey][]*types.Func) []*types.Func {
	key := devirtKey{iface: iface, name: m.Name()}
	if impls, ok := cache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, p := range g.prog.Pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			T := tn.Type()
			if types.IsInterface(T) {
				continue
			}
			if !types.Implements(T, iface) && !types.Implements(types.NewPointer(T), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(T), true, m.Pkg(), m.Name())
			impl, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if _, ok := g.prog.decls[impl]; !ok {
				impl = impl.Origin()
			}
			if _, ok := g.prog.decls[impl]; ok {
				impls = append(impls, impl)
			}
		}
	}
	cache[key] = impls
	return impls
}

// Reach is the result of a forward reachability query: the reached set plus
// the BFS tree that produced it, for "how did we get here" diagnostics.
type Reach struct {
	prog *Program
	// Set holds every function reachable from the roots (roots included).
	Set map[*types.Func]bool
	// parent maps each reached function to its BFS predecessor (roots map
	// to nil), giving one shortest witness chain per function.
	parent map[*types.Func]*types.Func
}

// ReachableFrom runs the shared forward dataflow: breadth-first propagation
// of the "reachable" fact from the roots over the call graph. Deterministic:
// edges are in source order and the queue is FIFO.
func (g *CallGraph) ReachableFrom(roots ...*types.Func) *Reach {
	r := &Reach{
		prog:   g.prog,
		Set:    make(map[*types.Func]bool),
		parent: make(map[*types.Func]*types.Func),
	}
	var queue []*types.Func
	for _, root := range roots {
		if root == nil || r.Set[root] {
			continue
		}
		r.Set[root] = true
		r.parent[root] = nil
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.Out[fn] {
			if r.Set[callee] {
				continue
			}
			r.Set[callee] = true
			r.parent[callee] = fn
			queue = append(queue, callee)
		}
	}
	return r
}

// Chain renders the witness call chain from a root to fn, e.g.
// "(*Network).Step → transfer → routing.(ECube).Candidates". Names in
// anchor's package print unqualified.
func (r *Reach) Chain(fn *types.Func, anchor *Package) string {
	var rev []*types.Func
	for f := fn; f != nil; f = r.parent[f] {
		rev = append(rev, f)
		if r.parent[f] == nil {
			break
		}
	}
	parts := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		parts = append(parts, r.prog.funcDisplayName(rev[i], anchor))
	}
	return strings.Join(parts, " → ")
}

// PropagateUp runs the shared backward dataflow: the least fixpoint of a
// bottom-up boolean fact, out(fn) = gen(fn) ∨ (∨ out(callee) over fn's
// callees). lockscope uses it to mark functions that may block.
func (g *CallGraph) PropagateUp(gen map[*types.Func]bool) map[*types.Func]bool {
	in := make(map[*types.Func][]*types.Func)
	for fn, callees := range g.Out {
		for _, c := range callees {
			in[c] = append(in[c], fn)
		}
	}
	out := make(map[*types.Func]bool, len(gen))
	var queue []*types.Func
	for fn, v := range gen {
		if v && !out[fn] {
			out[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range in[fn] {
			if out[caller] {
				continue
			}
			out[caller] = true
			queue = append(queue, caller)
		}
	}
	return out
}
