package lint

// LintDirective keeps the suppression mechanism honest: an //lint:allow
// directive naming a pass that does not exist (a typo, or a pass renamed
// out from under it) silently suppresses nothing while looking like a
// documented exemption. Stale suppressions rot — this pass makes each one
// a finding of its own.
type LintDirective struct {
	known map[string]bool
}

// NewLintDirective builds the pass over the registered pass names.
// DefaultPasses always hands it the full registry, even when the caller
// runs a subset, so an allow for a deselected pass is never misreported.
func NewLintDirective(names []string) *LintDirective {
	known := make(map[string]bool, len(names))
	for _, n := range names {
		known[n] = true
	}
	return &LintDirective{known: known}
}

// Name returns "lintdirective".
func (*LintDirective) Name() string { return "lintdirective" }

// Doc describes the pass.
func (*LintDirective) Doc() string {
	return "every //lint:allow directive must name registered passes"
}

// RunProgram checks every recorded directive against the registry.
func (d *LintDirective) RunProgram(prog *Program) []Finding {
	var out []Finding
	for _, p := range prog.Pkgs {
		for _, dir := range p.directives {
			for _, pass := range dir.passes {
				if d.known[pass] {
					continue
				}
				out = append(out, Finding{
					Pos:  dir.pos,
					Pass: d.Name(),
					Msg:  "unknown pass \"" + pass + "\" in //lint:allow directive; it suppresses nothing (run wormlint -list for the registry)",
				})
			}
		}
	}
	return out
}
