package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopy flags functions that copy a lock: a value (non-pointer)
// receiver or parameter whose type contains a sync primitive. A copied
// mutex guards nothing — the telemetry Progress tracker and the stats
// gauges are exactly the kinds of types this protects. go vet's copylocks
// catches assignments too; this pass keeps the signature-level rule in the
// repo's own gate so wormlint stands alone.
type MutexCopy struct{}

// Name returns "mutexcopy".
func (MutexCopy) Name() string { return "mutexcopy" }

// Doc describes the pass.
func (MutexCopy) Doc() string {
	return "forbid value receivers and parameters whose type contains a sync primitive"
}

// Run reports lock-copying signatures.
func (MutexCopy) Run(p *Package) []Finding {
	var out []Finding
	check := func(kind string, fl *ast.FieldList, fnName string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if lock := containsLock(t, nil); lock != "" {
				out = append(out, p.finding(MutexCopy{}.Name(), field,
					"%s of %s copies a lock: type %s contains sync.%s; use a pointer",
					kind, fnName, t.String(), lock))
			}
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			check("receiver", fn.Recv, fn.Name.Name)
			check("parameter", fn.Type.Params, fn.Name.Name)
			check("result", fn.Type.Results, fn.Name.Name)
		}
	}
	return out
}

// containsLock reports the first sync primitive reachable from t by value
// (no pointer indirection), or "".
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return obj.Name()
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := containsLock(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return ""
}
