package lint

// The dataflow layer extracts a *semantic footprint* from engine code: which
// configuration and topology fields a function reads, which canonical state
// components it writes, and — in program order — which RNG draws, telemetry
// or forensics hooks, and pool acquire/release calls it performs. The
// engineparity pass diffs footprints across the scalar/batch engine pairs;
// the conservation pass reuses the same write canonicalization to balance
// resource counters.
//
// The extraction is syntactic and deliberately shallow: it walks a function
// body in source order (pre-order, so a call's label precedes events from
// its arguments), resolves local aliases of receiver fields (h := &hotA[i]),
// and inlines unpaired same-side helper methods at their call sites so that
// a helper split on one engine but not the other does not hide events.
// Paired functions are atomic "pair:<name>" events — their own footprints
// are compared separately.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EngineModel teaches the dataflow layer how to read semantic events out of
// a package holding two engine implementations. All tables are in terms of
// source identifiers so the model stays declarative; NewEngineParity builds
// the instance for wormsim/internal/network, and fixtures build their own.
type EngineModel struct {
	// TargetPkg is the import path of the package under analysis.
	TargetPkg string

	// ScalarTypes and BatchTypes name the receiver types (without pointer)
	// whose unpaired methods are side-local helpers, inlined into the
	// footprint of each caller.
	ScalarTypes []string
	BatchTypes  []string

	// CallPrefix maps qualified receiver types ("path/to/pkg.Type", works
	// for interfaces too) to an event prefix: a method call on such a value
	// becomes the event "<prefix>.<Method>". Unmapped foreign receivers are
	// ignored (fmt, strings, ...).
	CallPrefix map[string]string

	// FuncLabels maps qualified package-level functions ("path/to/pkg.Func")
	// to event labels; unmapped foreign functions are ignored.
	FuncLabels map[string]string

	// HookFields canonicalizes func-typed fields invoked as hooks: calling
	// a field named K emits the event "hook.<HookFields[K]>" (or
	// "hook.<K>" when unmapped).
	HookFields map[string]string

	// ConfigFields maps struct field names counted as configuration or
	// topology inputs to their canonical read labels. Only field selections
	// count, so locals shadowing a config name are invisible.
	ConfigFields map[string]string

	// StateCanon canonicalizes written state: keys are dotted field chains
	// rooted at the engine value ("vcFlits", "hotA.out", "window.Cycles").
	// A full-chain entry wins; a first-segment entry mapping to "" drops
	// that segment and re-canonicalizes the rest (used for container hops
	// like "reps"); everything else is itself.
	StateCanon map[string]string

	// LiteralTypes maps composite-literal struct types declared in
	// TargetPkg to a chain prefix: keyed fields of such a literal count as
	// writes of "<prefix>.<field>" (the batch engine initializes state
	// through vcHot{...} literals where the scalar engine assigns arrays).
	LiteralTypes map[string]string

	// PoolCalls, DrawCalls/DrawPrefixes and HookPrefixes route labeled call
	// events into the ordered footprint dimensions; any labeled call not
	// routed lands in the generic ordered "calls" dimension.
	PoolCalls    map[string]bool
	DrawCalls    map[string]bool
	DrawPrefixes map[string]bool
	HookPrefixes map[string]bool
}

// sideType reports whether name is one of the engine receiver types whose
// unpaired methods get inlined.
func (m *EngineModel) sideType(name string) bool {
	for _, t := range m.ScalarTypes {
		if t == name {
			return true
		}
	}
	for _, t := range m.BatchTypes {
		if t == name {
			return true
		}
	}
	return false
}

// parityDims are the footprint dimensions, in certificate order. "reads"
// and "writes" are sets; the rest are program-order sequences.
var parityDims = []string{"reads", "writes", "draws", "hooks", "pool", "calls"}

// footprint is the extracted semantic footprint of one function (with its
// same-side helpers inlined).
type footprint struct {
	Reads  []string // sorted set of canonical config/topology inputs
	Writes []string // sorted set of canonical state components
	Draws  []string // RNG/selection draw sites in program order
	Hooks  []string // telemetry/forensics/profiling/user hooks in order
	Pool   []string // pool and credit acquire/release calls in order
	Calls  []string // paired and shared callees plus algorithm calls in order
}

// dim returns the named dimension.
func (f *footprint) dim(name string) []string {
	switch name {
	case "reads":
		return f.Reads
	case "writes":
		return f.Writes
	case "draws":
		return f.Draws
	case "hooks":
		return f.Hooks
	case "pool":
		return f.Pool
	case "calls":
		return f.Calls
	}
	return nil
}

// fpEvent is one extracted event: the dimension it lands in and its label.
type fpEvent struct {
	dim   string
	label string
}

// extractor accumulates events for one top-level footprint extraction,
// following helper inlining across function boundaries.
type extractor struct {
	model  *EngineModel
	prog   *Program
	paired map[*types.Func]string // paired engine functions -> pair name
	stack  map[*types.Func]bool   // inlining stack, cuts recursion
	events []fpEvent
}

func newExtractor(model *EngineModel, prog *Program, paired map[*types.Func]string) *extractor {
	return &extractor{
		model:  model,
		prog:   prog,
		paired: paired,
		stack:  make(map[*types.Func]bool),
	}
}

// footprintOf extracts fn's footprint. Events from inlined helpers appear at
// their call sites; reads and writes are deduplicated and sorted at the end.
func (x *extractor) footprintOf(fn *types.Func) footprint {
	x.events = x.events[:0]
	x.emitFunc(fn)

	var fp footprint
	reads := make(map[string]bool)
	writes := make(map[string]bool)
	for _, ev := range x.events {
		switch ev.dim {
		case "reads":
			reads[ev.label] = true
		case "writes":
			writes[ev.label] = true
		case "draws":
			fp.Draws = append(fp.Draws, ev.label)
		case "hooks":
			fp.Hooks = append(fp.Hooks, ev.label)
		case "pool":
			fp.Pool = append(fp.Pool, ev.label)
		case "calls":
			fp.Calls = append(fp.Calls, ev.label)
		}
	}
	for r := range reads {
		fp.Reads = append(fp.Reads, r)
	}
	for w := range writes {
		fp.Writes = append(fp.Writes, w)
	}
	sort.Strings(fp.Reads)
	sort.Strings(fp.Writes)
	return fp
}

// emitFunc walks fn's body, appending its events. Re-entry through the
// inlining stack degrades to an atomic call event.
func (x *extractor) emitFunc(fn *types.Func) {
	decl := x.prog.decls[fn]
	pkg := x.prog.declPkg[fn]
	if decl == nil || decl.Body == nil || pkg == nil {
		return
	}
	x.stack[fn] = true
	defer delete(x.stack, fn)
	w := &fpWalker{x: x, pkg: pkg, aliases: collectFieldAliases(pkg, decl)}
	ast.Inspect(decl.Body, w.visit)
}

func (x *extractor) emit(dim, label string) {
	x.events = append(x.events, fpEvent{dim: dim, label: label})
}

// emitLabel routes one labeled call event into its dimension.
func (x *extractor) emitLabel(label string) {
	prefix := label
	if i := strings.IndexByte(label, '.'); i >= 0 {
		prefix = label[:i]
	}
	switch {
	case x.model.PoolCalls[label]:
		x.emit("pool", label)
	case x.model.DrawCalls[label] || x.model.DrawPrefixes[prefix]:
		x.emit("draws", label)
	case x.model.HookPrefixes[prefix]:
		x.emit("hooks", label)
	default:
		x.emit("calls", label)
	}
}

// fpWalker carries the per-function state of one body walk.
type fpWalker struct {
	x       *extractor
	pkg     *Package
	aliases map[types.Object][]string
}

func (w *fpWalker) visit(n ast.Node) bool {
	switch t := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range t.Lhs {
			// Rebinding a bare local is alias bookkeeping, not a state
			// write — writes flow through the selector/index/deref forms.
			// The exception is a self-append, which grows the aliased
			// backing array in place.
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				obj := w.pkg.Info.Defs[id]
				if obj == nil {
					obj = w.pkg.Info.Uses[id]
				}
				if len(t.Lhs) != len(t.Rhs) || !isSelfAppend(w.pkg, t.Rhs[i], obj) {
					continue
				}
			}
			w.emitWrite(lhs)
		}
	case *ast.IncDecStmt:
		w.emitWrite(t.X)
	case *ast.SelectorExpr:
		w.emitRead(t)
	case *ast.CompositeLit:
		w.emitLiteral(t)
	case *ast.CallExpr:
		w.emitCall(t)
	}
	return true
}

// emitWrite records the canonical state component an assignment target
// mutates, if it resolves to one.
func (w *fpWalker) emitWrite(lhs ast.Expr) {
	if c := canonicalWrite(w.x.model, w.pkg, w.aliases, lhs); c != "" {
		w.x.emit("writes", c)
	}
}

// emitRead records configuration/topology field reads.
func (w *fpWalker) emitRead(sel *ast.SelectorExpr) {
	v, ok := w.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	if canon, ok := w.x.model.ConfigFields[sel.Sel.Name]; ok {
		w.x.emit("reads", canon)
	}
}

// emitLiteral records keyed fields of configured composite literals as
// state writes.
func (w *fpWalker) emitLiteral(lit *ast.CompositeLit) {
	tv, ok := w.pkg.Info.Types[lit]
	if !ok {
		return
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != w.x.model.TargetPkg {
		return
	}
	prefix, ok := w.x.model.LiteralTypes[named.Obj().Name()]
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		w.x.emit("writes", w.x.model.canonState([]string{prefix, key.Name}))
	}
}

// emitCall classifies one call: paired engine functions become atomic
// "pair:" events, unpaired same-side helpers are inlined, other
// target-package functions become "call:" events, and foreign calls are
// labeled through CallPrefix/FuncLabels or ignored.
func (w *fpWalker) emitCall(call *ast.CallExpr) {
	x := w.x
	if fn := calleeFunc(w.pkg, call); fn != nil {
		if name, ok := x.paired[fn]; ok {
			x.emit("calls", "pair:"+name)
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == x.model.TargetPkg {
			if rt := recvTypeName(fn); rt != "" && x.model.sideType(rt) && !x.stack[fn] {
				x.emitFunc(fn)
				return
			}
			x.emit("calls", "call:"+fn.Name())
			return
		}
		// Foreign method: label by receiver type.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil {
				q := named.Obj().Pkg().Path() + "." + named.Obj().Name()
				if prefix, ok := x.model.CallPrefix[q]; ok {
					x.emitLabel(prefix + "." + fn.Name())
				}
			}
			return
		}
		// Foreign package-level function.
		if fn.Pkg() != nil {
			if label, ok := x.model.FuncLabels[fn.Pkg().Path()+"."+fn.Name()]; ok {
				x.emitLabel(label)
			}
		}
		return
	}
	// No static callee: a call through a func-typed field is a user hook.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v, ok := w.pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				name := sel.Sel.Name
				if canon, ok := x.model.HookFields[name]; ok {
					name = canon
				}
				x.emitLabel("hook." + name)
			}
		}
	}
}

// recvTypeName returns fn's receiver type name without pointer, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// canonState canonicalizes a dotted field chain into a state component
// name. The longest prefix of the chain with a StateCanon entry is
// rewritten to that entry (a "" entry is a transparent container hop and
// drops out) and the remainder is canonicalized recursively — so
// "hotA.out.ch" → "out.ch" via the "hotA.out" entry and
// "vcMsg.DeliverTime" → "msg.DeliverTime" via "vcMsg" → "msg". Unmapped
// chains canonicalize to themselves.
func (m *EngineModel) canonState(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	for k := len(chain); k > 0; k-- {
		prefix := strings.Join(chain[:k], ".")
		c, ok := m.StateCanon[prefix]
		if !ok {
			continue
		}
		rest := m.canonState(chain[k:])
		switch {
		case c == "":
			return rest
		case rest == "":
			return c
		default:
			return c + "." + rest
		}
	}
	return strings.Join(chain, ".")
}

// canonicalWrite resolves an assignment target to its canonical state
// component: the dotted chain of struct fields under the receiver (through
// indexing, dereference and local aliases), canonicalized by the model.
// Plain locals resolve to "" — scratch writes are not state. A chain rooted
// in a type from outside the target package is prefixed with that type's
// name ("Message.FirstAlloc"), so cross-package state effects still align
// across engines.
func canonicalWrite(m *EngineModel, pkg *Package, aliases map[types.Object][]string, e ast.Expr) string {
	chain, owner := fieldChain(pkg, aliases, e)
	if len(chain) == 0 {
		return ""
	}
	if owner != nil && owner.Obj().Pkg() != nil && owner.Obj().Pkg().Path() != m.TargetPkg {
		chain = append([]string{owner.Obj().Name()}, chain...)
	}
	return m.canonState(chain)
}

// fieldChain collects the struct-field selection chain of e, outermost
// field last, resolving the root ident through aliases. owner is the named
// type the deepest field is selected from (nil when the root carries an
// alias, whose chain is already receiver-rooted).
func fieldChain(pkg *Package, aliases map[types.Object][]string, e ast.Expr) (chain []string, owner *types.Named) {
	var deepest *ast.SelectorExpr
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return nil, nil
			}
			e = t.X
		case *ast.SelectorExpr:
			v, ok := pkg.Info.Uses[t.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return nil, nil
			}
			chain = append([]string{t.Sel.Name}, chain...)
			deepest = t
			e = t.X
		case *ast.Ident:
			obj := pkg.Info.Uses[t]
			if obj == nil {
				obj = pkg.Info.Defs[t]
			}
			if pre, ok := aliases[obj]; ok {
				return append(append([]string{}, pre...), chain...), nil
			}
			if deepest != nil {
				if sel := pkg.Info.Selections[deepest]; sel != nil {
					owner = namedOf(sel.Recv())
				}
			}
			return chain, owner
		default:
			return nil, nil
		}
	}
}

// collectFieldAliases maps locals that alias receiver state — h := &hotA[i],
// refs := n.wormRefs[:0] — to the field chain they stand for, so writes
// through them canonicalize like direct field writes. A local reassigned to
// a different chain or to an arbitrary expression is poisoned; reassignment
// by self-append (refs = append(refs, ...)) keeps the alias, matching the
// engines' scratch-reuse idiom. Two rounds resolve alias-through-alias.
func collectFieldAliases(pkg *Package, fd *ast.FuncDecl) map[types.Object][]string {
	aliases := make(map[types.Object][]string)
	poisoned := make(map[types.Object]bool)
	for round := 0; round < 2; round++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil || poisoned[obj] {
					continue
				}
				if isSelfAppend(pkg, as.Rhs[i], obj) {
					continue
				}
				chain, _ := fieldChain(pkg, aliases, as.Rhs[i])
				if len(chain) == 0 {
					poisoned[obj] = true
					delete(aliases, obj)
					continue
				}
				if old, ok := aliases[obj]; ok && strings.Join(old, ".") != strings.Join(chain, ".") {
					poisoned[obj] = true
					delete(aliases, obj)
					continue
				}
				aliases[obj] = chain
			}
			return true
		})
	}
	return aliases
}

// isSelfAppend reports whether e is append(x, ...) growing x itself.
func isSelfAppend(pkg *Package, e ast.Expr, x types.Object) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fun, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	arg, ok := unparen(call.Args[0]).(*ast.Ident)
	return ok && pkg.Info.Uses[arg] == x
}
