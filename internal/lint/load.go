package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The Package struct the loader produces lives in lint.go alongside the
// directive bookkeeping.
//
// Loader parses and type-checks packages of the enclosing module using only
// the standard library: module-local imports are resolved from source
// relative to the module root (found by walking up to go.mod), and
// standard-library imports go through go/importer's source importer. There
// is no go/packages dependency and no go-command subprocess, so the linter
// is a plain `go run ./cmd/wormlint` away in any environment that can build
// the repo.
type Loader struct {
	// Fset positions every loaded file; findings resolve through it.
	Fset *token.FileSet
	// ModRoot is the absolute module root directory, ModPath the module
	// path declared in go.mod.
	ModRoot string
	ModPath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module enclosing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and parses its module
// path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load expands patterns — directory paths, optionally ending in "/..." for
// a recursive walk — and returns the matched packages sorted by import
// path. Relative patterns resolve against the current directory. Test
// files, testdata, vendor and hidden/underscore directories are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "...") {
			rec = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
		}
		if pat == "" {
			pat = "."
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !rec {
			dirs[abs] = true
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads the single package in dir, or nil if the directory holds no
// non-test Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one package directory, memoized by import
// path. It returns (nil, nil) when the directory has no non-test Go files.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}

	allow, reasons, directives := collectAllows(l.Fset, files)
	p := &Package{
		Path:        path,
		Dir:         dir,
		Fset:        l.Fset,
		Files:       files,
		Types:       tpkg,
		Info:        info,
		allow:       allow,
		allowReason: reasons,
		directives:  directives,
	}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom, dispatching module-local import
// paths to the loader itself and everything else to the standard-library
// source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath); ok && (rest == "" || strings.HasPrefix(rest, "/")) {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
