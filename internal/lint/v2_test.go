package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtures type-checks several fixture packages under one loader so they
// share type identities — required for cross-package call-graph tests.
func loadFixtures(t *testing.T, names ...string) []*Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, name := range names {
		p, err := l.LoadDir(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		if p == nil {
			t.Fatalf("fixture %s has no Go files", name)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// wantFileLines scans every fixture file for trailing "// WANT <pass>"
// markers, keyed "basename:line" so multi-package fixtures cannot collide.
func wantFileLines(t *testing.T, pkgs []*Package, pass string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	marker := "// WANT " + pass
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("read fixture source: %v", err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				if strings.HasSuffix(strings.TrimRight(line, " \t"), marker) {
					want[filepath.Base(name)+":"+itoa(i+1)] = true
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture for %s has no WANT markers", pass)
	}
	return want
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// checkFixtureMulti runs one pass over several fixture packages (through
// Run, so //lint:allow suppression applies) and requires the reported
// file:line set to equal the WANT-marked set.
func checkFixtureMulti(t *testing.T, pkgs []*Package, pass Pass) {
	t.Helper()
	want := wantFileLines(t, pkgs, pass.Name())
	got := make(map[string]bool)
	for _, f := range Run(pkgs, []Pass{pass}) {
		got[filepath.Base(f.Pos.Filename)+":"+itoa(f.Pos.Line)] = true
		if f.Pass != pass.Name() {
			t.Errorf("finding %v attributed to pass %q, want %q", f, f.Pass, pass.Name())
		}
	}
	for key := range want {
		if !got[key] {
			t.Errorf("no %s finding at %s, want one", pass.Name(), key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected %s finding at %s", pass.Name(), key)
		}
	}
}

// TestCrossPackageHotAlloc: allocations behind a cross-package call, a
// devirtualized interface call, and a stored function value must all be
// reached from the root in the sibling package.
func TestCrossPackageHotAlloc(t *testing.T) {
	pkgs := loadFixtures(t, "xleak", "xleak/dep")
	checkFixtureMulti(t, pkgs, &HotAlloc{TargetPkg: pkgs[0].Path, Root: "(*Engine).Step"})
}

// TestCrossPackageSimDeterminism: the reachability scope must catch a
// wall-clock read in an untargeted package the engine reaches.
func TestCrossPackageSimDeterminism(t *testing.T) {
	pkgs := loadFixtures(t, "xleak", "xleak/dep")
	checkFixtureMulti(t, pkgs, &SimDeterminism{Roots: []FuncRef{{Pkg: pkgs[0].Path, Func: "(*Engine).Step"}}})
}

// TestWitnessChain: cross-package findings must explain how the engine
// reaches the flagged line.
func TestWitnessChain(t *testing.T) {
	pkgs := loadFixtures(t, "xleak", "xleak/dep")
	fs := Run(pkgs, []Pass{&HotAlloc{TargetPkg: pkgs[0].Path, Root: "(*Engine).Step"}})
	// Chains qualify names relative to the reported file's package: the
	// root prints as xleak.(*Engine).Step, dep's own members unqualified.
	var mixChain, routeChain bool
	for _, f := range fs {
		if strings.Contains(f.Msg, "xleak.(*Engine).Step → Mix") {
			mixChain = true
		}
		if strings.Contains(f.Msg, "xleak.(*Engine).Step → (Greedy).Route") {
			routeChain = true
		}
	}
	if !mixChain {
		t.Errorf("no finding carries the Step → Mix witness chain; findings: %v", fs)
	}
	if !routeChain {
		t.Errorf("no finding carries the devirtualized Step → (Greedy).Route chain; findings: %v", fs)
	}
}

// TestStoreCacheSimDeterminism: the run-store guard-rail. Wall-clock reads
// in a store's Lookup/Put must be flagged when a Sweep-like root consults
// the store on its cache-hit branch, while maintenance code the sweep never
// reaches stays legal. This is the fixture backing the production claim
// that warm-store reruns are bit-identical: the cache-hit path cannot
// observe the clock.
func TestStoreCacheSimDeterminism(t *testing.T) {
	pkgs := loadFixtures(t, "storecache", "storecache/store")
	checkFixtureMulti(t, pkgs, &SimDeterminism{Roots: []FuncRef{{Pkg: pkgs[0].Path, Func: "Sweep"}}})
}

func TestAtomicDisciplineFixture(t *testing.T) {
	checkFixtureMulti(t, loadFixtures(t, "atomicbad"), NewAtomicDiscipline())
}

func TestLockScopeFixture(t *testing.T) {
	checkFixtureMulti(t, loadFixtures(t, "lockbad"), NewLockScope())
}

func TestHookEscapeFixture(t *testing.T) {
	checkFixtureMulti(t, loadFixtures(t, "hookescapebad"), NewHookEscape())
}

// TestAllowMultiPass: one //lint:allow simdeterminism,hotalloc directive must
// suppress both passes on its line, and only there.
func TestAllowMultiPass(t *testing.T) {
	pkgs := loadFixtures(t, "allowmulti")
	p := pkgs[0]
	passes := []Pass{
		&SimDeterminism{Targets: []string{p.Path}},
		&HotAlloc{TargetPkg: p.Path, Root: "Step"},
	}
	byPass := make(map[string]int)
	for _, f := range Run(pkgs, passes) {
		byPass[f.Pass]++
		if !strings.Contains(fileLine(t, f), "both passes must still fire here") {
			t.Errorf("finding on unexpected line: %s", f)
		}
	}
	if byPass["simdeterminism"] != 1 || byPass["hotalloc"] != 1 {
		t.Errorf("control line findings = %v, want one per pass", byPass)
	}
}

// fileLine reads the source line a finding points at.
func fileLine(t *testing.T, f Finding) string {
	t.Helper()
	data, err := os.ReadFile(f.Pos.Filename)
	if err != nil {
		t.Fatalf("read %s: %v", f.Pos.Filename, err)
	}
	lines := strings.Split(string(data), "\n")
	if f.Pos.Line < 1 || f.Pos.Line > len(lines) {
		t.Fatalf("finding line %d out of range", f.Pos.Line)
	}
	return lines[f.Pos.Line-1]
}

// TestLintDirectiveUnknownPass: a directive naming an unregistered pass is
// itself a finding.
func TestLintDirectiveUnknownPass(t *testing.T) {
	pkgs := loadFixtures(t, "allowmulti")
	fs := Run(pkgs, []Pass{NewLintDirective(PassNames())})
	if len(fs) != 1 {
		t.Fatalf("got %d lintdirective findings, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "nosuchpass") {
		t.Errorf("finding does not name the unknown pass: %s", fs[0])
	}
}

func TestSelectPasses(t *testing.T) {
	ps, err := SelectPasses("errfmt, lockscope")
	if err != nil {
		t.Fatalf("SelectPasses: %v", err)
	}
	if len(ps) != 2 || ps[0].Name() != "lockscope" || ps[1].Name() != "errfmt" {
		// Reporting order is registry order, not spec order.
		t.Errorf("SelectPasses = %v, want [lockscope errfmt]", names(ps))
	}
	if _, err := SelectPasses("errfmt,bogus,worse"); err == nil || !strings.Contains(err.Error(), "bogus, worse") {
		t.Errorf("unknown passes not reported: %v", err)
	}
	if _, err := SelectPasses(" , "); err == nil {
		t.Error("empty selection not rejected")
	}
}

func names(ps []Pass) []string {
	var out []string
	for _, p := range ps {
		out = append(out, p.Name())
	}
	return out
}

// TestPassNamesUnique guards the registry against duplicate names, which
// would make -passes and directives ambiguous.
func TestPassNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range PassNames() {
		if seen[n] {
			t.Errorf("duplicate pass name %q", n)
		}
		seen[n] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d passes registered, want the full suite", len(seen))
	}
}

// TestApplyFixesGolden: applying every suggested fix to the fixme fixture
// must reproduce the fixmefixed golden byte-for-byte, and the golden must be
// fully fixed (no remaining findings at all — idempotency).
func TestApplyFixesGolden(t *testing.T) {
	passes := []Pass{ErrFmt{}, LoopCapture{}, NewHookGuard()}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "fixme"))
	if err != nil {
		t.Fatalf("LoadDir(fixme): %v", err)
	}
	findings := Run([]*Package{p}, passes)
	var fixable int
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		}
	}
	if fixable < 3 {
		t.Fatalf("fixme produced %d fixable findings, want at least one per fix-producing pass", fixable)
	}
	patched, err := ApplyFixes(l.Fset, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(patched) != 1 {
		t.Fatalf("patched %d files, want 1", len(patched))
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "src", "fixmefixed", "fixme.go"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	for name, got := range patched {
		if !bytes.Equal(got, golden) {
			t.Errorf("ApplyFixes(%s) does not match the fixmefixed golden:\n--- got ---\n%s\n--- want ---\n%s",
				name, got, golden)
		}
	}

	// Idempotency: the golden is itself a loadable fixture and must come
	// back clean.
	fixed := loadFixtures(t, "fixmefixed")
	if fs := Run(fixed, passes); len(fs) != 0 {
		t.Errorf("fixmefixed still has findings: %v", fs)
	}
}

// TestSARIFGolden pins the SARIF 2.1.0 shape with a byte-exact golden.
func TestSARIFGolden(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "errbad"))
	if err != nil {
		t.Fatalf("LoadDir(errbad): %v", err)
	}
	findings := Run([]*Package{p}, []Pass{ErrFmt{}})
	if len(findings) == 0 {
		t.Fatal("errbad produced no findings to serialize")
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, DefaultPasses(), l.ModRoot); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	goldenPath := filepath.Join("testdata", "errbad.sarif.golden")
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate by running TestSARIFGolden with WORMLINT_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		if os.Getenv("WORMLINT_UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		t.Errorf("SARIF output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), golden)
	}

	// Sanity beyond the bytes: the fields code scanning requires.
	out := buf.String()
	for _, needle := range []string{
		`"version": "2.1.0"`, `"ruleId": "errfmt"`, `"startLine"`,
		`"uri": "internal/lint/testdata/src/errbad/errbad.go"`,
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("SARIF output missing %s", needle)
		}
	}
}

// TestBaselineRoundTrip: write → read → filter must suppress exactly the
// recorded findings and let new ones through.
func TestBaselineRoundTrip(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "errbad"))
	if err != nil {
		t.Fatalf("LoadDir(errbad): %v", err)
	}
	findings := Run([]*Package{p}, []Pass{ErrFmt{}})
	if len(findings) == 0 {
		t.Fatal("errbad produced no findings")
	}

	path := filepath.Join(t.TempDir(), "baseline.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(f, findings, l.ModRoot); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(base) != len(findings) {
		t.Fatalf("baseline has %d entries, want %d", len(base), len(findings))
	}

	fresh := findings[0]
	fresh.Msg = "a brand new finding"
	all := append(append([]Finding(nil), findings...), fresh)
	kept, suppressed := FilterBaseline(all, base, l.ModRoot)
	if suppressed != len(findings) {
		t.Errorf("suppressed %d, want %d", suppressed, len(findings))
	}
	if len(kept) != 1 || kept[0].Msg != "a brand new finding" {
		t.Errorf("kept = %v, want only the new finding", kept)
	}
}

// TestErrfmtFixSpansVerb: the %v→%w fix must edit exactly the verb byte.
func TestErrfmtFixSpansVerb(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "fixme"))
	if err != nil {
		t.Fatalf("LoadDir(fixme): %v", err)
	}
	for _, f := range Run([]*Package{p}, []Pass{ErrFmt{}}) {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			if e.NewText != "w" || e.End-e.Pos != 1 {
				t.Errorf("errfmt fix edit = %+v, want single-byte replacement with w", e)
			}
		}
	}
}
