package lint

import (
	"go/token"
	"os"
	"strings"
)

// UnusedAllow closes the suppression loop lintdirective opened: a
// //lint:allow directive whose pass names are all registered and spelled
// right, but which no longer suppresses any finding, is dead weight — it
// documents an exemption that no longer exists and silently widens the
// blind spot if the flagged code ever comes back. Each such directive (or
// stale pass name within a multi-pass directive) is a finding, with a fix
// that -fix applies: delete the comment (and its line, when it stands
// alone) when every judged pass is stale, or rewrite it keeping only the
// passes that still earn their suppression.
//
// The pass runs after every other pass in the same Run (see AfterPass), so
// "unused" is judged against what actually ran: a directive for a
// deselected pass is left alone, and one naming an unknown pass is
// lintdirective's finding, not ours.
type UnusedAllow struct {
	known map[string]bool
}

// NewUnusedAllow builds the pass over the registered pass names.
func NewUnusedAllow(names []string) *UnusedAllow {
	known := make(map[string]bool, len(names))
	for _, n := range names {
		known[n] = true
	}
	return &UnusedAllow{known: known}
}

// Name returns "unusedallow".
func (*UnusedAllow) Name() string { return "unusedallow" }

// Doc describes the pass.
func (*UnusedAllow) Doc() string {
	return "an //lint:allow directive that suppresses no finding is itself a finding (-fix deletes it)"
}

// RunAfter judges every directive against the suppressions this run
// exercised. ran holds the names of the passes that ran.
func (u *UnusedAllow) RunAfter(prog *Program, ran map[string]bool) []Finding {
	var out []Finding
	srcCache := make(map[string][]byte)
	for _, p := range prog.Pkgs {
		for _, d := range p.directives {
			var stale, keep []string
			for _, pass := range d.passes {
				// Only judge what this run can prove stale: a registered
				// pass that ran and never fired on a covered line. A
				// directive for unusedallow itself suppresses a finding
				// Run has not filtered yet, so it is never judged.
				judgeable := u.known[pass] && ran[pass] && pass != u.Name()
				used := prog.usedAt(d.pos.Filename, d.cover[0], pass) ||
					prog.usedAt(d.pos.Filename, d.cover[1], pass)
				if judgeable && !used {
					stale = append(stale, pass)
				} else {
					keep = append(keep, pass)
				}
			}
			if len(stale) == 0 {
				continue
			}
			f := Finding{
				Pos:  d.pos,
				Pass: u.Name(),
				Msg: "//lint:allow " + strings.Join(stale, ",") +
					" suppresses no finding; the exemption it documents no longer exists — delete it (wormlint -fix does)",
			}
			if fix := u.fix(d, keep, srcCache); fix != nil {
				f.Fix = fix
			}
			out = append(out, f)
		}
	}
	return out
}

// fix builds the edit resolving one stale directive: a rewrite keeping the
// still-live passes, or a deletion — of the whole source line when the
// comment stands alone on it, of the comment and its leading spaces when it
// trails code.
func (u *UnusedAllow) fix(d allowDirective, keep []string, srcCache map[string][]byte) *Fix {
	src, ok := srcCache[d.pos.Filename]
	if !ok {
		data, err := os.ReadFile(d.pos.Filename)
		if err != nil {
			return nil
		}
		src, srcCache[d.pos.Filename] = data, data
	}
	// token.Pos for a byte offset within this file.
	at := func(off int) token.Pos { return d.start + token.Pos(off-d.pos.Offset) }

	if len(keep) > 0 {
		text := "//lint:allow " + strings.Join(keep, ",")
		if d.reason != "" {
			text += " " + d.reason
		}
		return &Fix{
			Message: "drop the stale pass name(s) from the directive",
			Edits:   []TextEdit{{Pos: d.start, End: d.stop, NewText: text}},
		}
	}

	lineStart := d.pos.Offset - (d.pos.Column - 1)
	if lineStart < 0 || d.end.Offset > len(src) {
		return nil
	}
	alone := true
	for _, b := range src[lineStart:d.pos.Offset] {
		if b != ' ' && b != '\t' {
			alone = false
			break
		}
	}
	if alone {
		end := d.end.Offset
		if end < len(src) && src[end] == '\n' {
			end++
		}
		return &Fix{
			Message: "delete the stale directive line",
			Edits:   []TextEdit{{Pos: at(lineStart), End: at(end), NewText: ""}},
		}
	}
	ws := d.pos.Offset
	for ws > lineStart && (src[ws-1] == ' ' || src[ws-1] == '\t') {
		ws--
	}
	return &Fix{
		Message: "delete the stale trailing directive",
		Edits:   []TextEdit{{Pos: at(ws), End: d.stop, NewText: ""}},
	}
}
