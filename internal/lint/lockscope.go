package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockScope enforces the repo's mutex discipline: a sync.Mutex (or RWMutex)
// critical section must stay short, non-blocking and balanced. While a lock
// is held the pass forbids
//
//   - channel sends and receives, `for range ch`, and select statements
//     without a default (all can block indefinitely; the observatory's
//     broadcast uses select-with-default precisely so a slow subscriber can
//     never stall a publication — that pattern is allowed);
//   - invoking a function value (a hook field, parameter or local): code
//     the holder cannot see may block, re-enter the lock, or call back into
//     the engine — read hooks and clocks before locking, call them after
//     unlocking;
//   - calling any function that (transitively, over the static call graph)
//     performs a blocking operation or acquires a lock itself — computed
//     with the shared bottom-up dataflow driver;
//
// and it requires pairing: a function that calls x.Lock() must also unlock
// x (plainly or via defer, including defer func() { x.Unlock() }()), and no
// return may execute while x is still held without defer coverage.
// sync.Cond is exempt (Wait atomically releases the mutex; that is the
// scheduler's idle-park pattern). Held-state tracking is branch-local and
// conservative: effects of a conditional body do not escape it.
//
// Intentional long-held sections are annotated with //lint:allow lockscope
// and a reason.
type LockScope struct{}

// NewLockScope returns the pass.
func NewLockScope() *LockScope { return &LockScope{} }

// Name returns "lockscope".
func (*LockScope) Name() string { return "lockscope" }

// Doc describes the pass.
func (*LockScope) Doc() string {
	return "forbid blocking operations and hook invocation under a mutex; require lock/unlock pairing"
}

// RunProgram computes program-wide may-block facts, then walks every
// function's critical sections.
func (l *LockScope) RunProgram(prog *Program) []Finding {
	graph := prog.Graph()
	gen := make(map[*types.Func]bool)
	for fn, fd := range prog.decls {
		if fd.Body == nil {
			continue
		}
		p := prog.declPkg[fn]
		if bodyMayBlock(p, fd.Body) {
			gen[fn] = true
		}
	}
	mayBlock := graph.PropagateUp(gen)

	var out []Finding
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, l.checkScopes(prog, p, fd.Body, mayBlock)...)
			}
		}
	}
	return out
}

// bodyMayBlock reports whether a body directly performs a blocking
// operation or acquires a lock. Channel operations that are comm clauses of
// a select WITH a default are non-blocking and do not count; a select
// without default does. Nested function literals count conservatively (they
// run when the enclosing function invokes them).
func bodyMayBlock(p *Package, body *ast.BlockStmt) bool {
	blocking := false
	// Comm statements of selects carrying a default: channel ops positioned
	// inside them are non-blocking. ast.Inspect visits a select before its
	// children, so the list is populated in time.
	var nonBlockingComms []ast.Stmt
	inNonBlockingComm := func(pos token.Pos) bool {
		for _, s := range nonBlockingComms {
			if pos >= s.Pos() && pos <= s.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				blocking = true
				return false
			}
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlockingComms = append(nonBlockingComms, cc.Comm)
				}
			}
		case *ast.SendStmt:
			if !inNonBlockingComm(n.Pos()) {
				blocking = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inNonBlockingComm(n.Pos()) {
				blocking = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					blocking = true
				}
			}
		case *ast.CallExpr:
			if kind := lockCallKind(p, n); kind == lockAcquire || kind == blockingCall {
				blocking = true
			}
		}
		return true
	})
	return blocking
}

type lockKind int

const (
	notLockRelated lockKind = iota
	lockAcquire             // x.Lock() / x.RLock()
	lockRelease             // x.Unlock() / x.RUnlock()
	condExempt              // sync.Cond methods (Wait releases the mutex)
	blockingCall            // a known-blocking stdlib call
)

// lockCallKind classifies a call: mutex acquire/release (receiver
// expression returned via lockRecv), sync.Cond use, or a known-blocking
// stdlib call ((*sync.WaitGroup).Wait, time.Sleep).
func lockCallKind(p *Package, call *ast.CallExpr) lockKind {
	if name, ok := pkgFuncCall(p, call, "time"); ok && name == "Sleep" {
		return blockingCall
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return notLockRelated
	}
	recvT := p.Info.TypeOf(sel.X)
	if recvT == nil {
		return notLockRelated
	}
	name := namedSyncType(recvT)
	switch name {
	case "Mutex", "RWMutex":
		switch sel.Sel.Name {
		case "Lock", "RLock":
			return lockAcquire
		case "Unlock", "RUnlock":
			return lockRelease
		}
	case "Cond":
		return condExempt
	case "WaitGroup":
		if sel.Sel.Name == "Wait" {
			return blockingCall
		}
	}
	return notLockRelated
}

// namedSyncType returns the sync package type name behind t (through one
// pointer), or "".
func namedSyncType(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "sync" {
		return obj.Name()
	}
	return ""
}

// lockRecv renders the mutex receiver expression of a Lock/Unlock call as
// its identity key ("s.mu").
func lockRecv(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return types.ExprString(sel.X)
}

// scope is the held-lock state while walking one function body.
type scope struct {
	held map[string]bool // mutex key → currently held
	// deferred marks mutexes released by a defer: held for blocking checks
	// but satisfied for pairing.
	deferred map[string]bool
	// unlocked records every mutex key this function ever unlocks (plain or
	// deferred), for the "never unlocked" check.
	unlocked map[string]bool
	// lockPos remembers the finding anchor for each held mutex.
	lockPos map[string]ast.Node
}

func newScope() *scope {
	return &scope{
		held:     make(map[string]bool),
		deferred: make(map[string]bool),
		unlocked: make(map[string]bool),
		lockPos:  make(map[string]ast.Node),
	}
}

// clone snapshots held state for branch-local tracking.
func (sc *scope) clone() *scope {
	c := newScope()
	for k, v := range sc.held {
		c.held[k] = v
	}
	for k, v := range sc.deferred {
		c.deferred[k] = v
	}
	c.unlocked = sc.unlocked // shared accumulator
	for k, v := range sc.lockPos {
		c.lockPos[k] = v
	}
	return c
}

// heldKeys lists the held mutexes sorted for deterministic messages.
func (sc *scope) heldKeys() []string {
	var keys []string
	for k, v := range sc.held {
		if v {
			keys = append(keys, k)
		}
	}
	if len(keys) > 1 {
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	return keys
}

// checkScopes walks one function body (and, as independent scopes, every
// nested function literal) enforcing the critical-section rules.
func (l *LockScope) checkScopes(prog *Program, p *Package, body *ast.BlockStmt, mayBlock map[*types.Func]bool) []Finding {
	var out []Finding
	sc := newScope()
	out = append(out, l.walkStmts(prog, p, body.List, sc, mayBlock)...)
	for key, held := range sc.held {
		if held && !sc.unlocked[key] {
			out = append(out, p.finding(l.Name(), sc.lockPos[key],
				"%s.Lock() is never paired with an unlock in this function; add %s.Unlock() or defer it", key, key))
		}
	}
	// Nested literals are their own scopes: a closure runs later, without
	// the creator's locks.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, l.checkScopes(prog, p, lit.Body, mayBlock)...)
			return false
		}
		return true
	})
	return out
}

// walkStmts processes a statement list, updating held state and flagging
// violations. Branch bodies run on a clone: their lock effects do not
// escape (conservative — matches the repo's lock-per-call-shape style).
func (l *LockScope) walkStmts(prog *Program, p *Package, stmts []ast.Stmt, sc *scope, mayBlock map[*types.Func]bool) []Finding {
	var out []Finding
	for _, s := range stmts {
		out = append(out, l.walkStmt(prog, p, s, sc, mayBlock)...)
	}
	return out
}

func (l *LockScope) walkStmt(prog *Program, p *Package, s ast.Stmt, sc *scope, mayBlock map[*types.Func]bool) []Finding {
	var out []Finding
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch lockCallKind(p, call) {
			case lockAcquire:
				key := lockRecv(call)
				sc.held[key] = true
				sc.lockPos[key] = call
				return out
			case lockRelease:
				key := lockRecv(call)
				sc.held[key] = false
				sc.unlocked[key] = true
				return out
			}
		}
		out = append(out, l.checkExpr(prog, p, s.X, sc, mayBlock)...)
	case *ast.DeferStmt:
		if kind := lockCallKind(p, s.Call); kind == lockRelease {
			key := lockRecv(s.Call)
			sc.deferred[key] = true
			sc.unlocked[key] = true
			return out
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; x.Unlock() }() counts as defer coverage.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if ok && lockCallKind(p, call) == lockRelease {
					key := lockRecv(call)
					sc.deferred[key] = true
					sc.unlocked[key] = true
				}
				return true
			})
		}
	case *ast.SendStmt:
		out = append(out, l.flagIfHeld(p, s, sc, "channel send")...)
		out = append(out, l.checkExpr(prog, p, s.Value, sc, mayBlock)...)
	case *ast.GoStmt:
		// The spawned goroutine does not hold our locks; only evaluate the
		// call's arguments here.
		for _, arg := range s.Call.Args {
			out = append(out, l.checkExpr(prog, p, arg, sc, mayBlock)...)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			out = append(out, l.checkExpr(prog, p, e, sc, mayBlock)...)
		}
		for _, e := range s.Lhs {
			out = append(out, l.checkExpr(prog, p, e, sc, mayBlock)...)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			out = append(out, l.checkExpr(prog, p, e, sc, mayBlock)...)
		}
		for _, key := range sc.heldKeys() {
			if !sc.deferred[key] {
				out = append(out, p.finding(l.Name(), s,
					"return while %s is still locked on this path; unlock before returning or use defer", key))
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			out = append(out, l.walkStmt(prog, p, s.Init, sc, mayBlock)...)
		}
		out = append(out, l.checkExpr(prog, p, s.Cond, sc, mayBlock)...)
		out = append(out, l.walkStmts(prog, p, s.Body.List, sc.clone(), mayBlock)...)
		if s.Else != nil {
			out = append(out, l.walkStmt(prog, p, s.Else, sc.clone(), mayBlock)...)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			out = append(out, l.walkStmt(prog, p, s.Init, sc, mayBlock)...)
		}
		if s.Cond != nil {
			out = append(out, l.checkExpr(prog, p, s.Cond, sc, mayBlock)...)
		}
		out = append(out, l.walkStmts(prog, p, s.Body.List, sc.clone(), mayBlock)...)
	case *ast.RangeStmt:
		if t := p.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				out = append(out, l.flagIfHeld(p, s, sc, "range over channel")...)
			}
		}
		out = append(out, l.checkExpr(prog, p, s.X, sc, mayBlock)...)
		out = append(out, l.walkStmts(prog, p, s.Body.List, sc.clone(), mayBlock)...)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			out = append(out, l.flagIfHeld(p, s, sc, "select without default")...)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				out = append(out, l.walkStmts(prog, p, cc.Body, sc.clone(), mayBlock)...)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			out = append(out, l.walkStmt(prog, p, s.Init, sc, mayBlock)...)
		}
		if s.Tag != nil {
			out = append(out, l.checkExpr(prog, p, s.Tag, sc, mayBlock)...)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				out = append(out, l.walkStmts(prog, p, cc.Body, sc.clone(), mayBlock)...)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				out = append(out, l.walkStmts(prog, p, cc.Body, sc.clone(), mayBlock)...)
			}
		}
	case *ast.BlockStmt:
		out = append(out, l.walkStmts(prog, p, s.List, sc, mayBlock)...)
	case *ast.LabeledStmt:
		out = append(out, l.walkStmt(prog, p, s.Stmt, sc, mayBlock)...)
	case *ast.IncDecStmt:
		out = append(out, l.checkExpr(prog, p, s.X, sc, mayBlock)...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = append(out, l.checkExpr(prog, p, v, sc, mayBlock)...)
					}
				}
			}
		}
	}
	return out
}

// checkExpr flags blocking constructs inside one expression while locks are
// held: receive operators, function-value invocations, and calls to
// may-block functions. Function literals are skipped (separate scopes).
func (l *LockScope) checkExpr(prog *Program, p *Package, e ast.Expr, sc *scope, mayBlock map[*types.Func]bool) []Finding {
	var out []Finding
	if e == nil || len(sc.heldKeys()) == 0 {
		return out
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, l.flagIfHeld(p, n, sc, "channel receive")...)
			}
		case *ast.CallExpr:
			out = append(out, l.checkCall(prog, p, n, sc, mayBlock)...)
		}
		return true
	})
	return out
}

// checkCall classifies one call made while locks are held.
func (l *LockScope) checkCall(prog *Program, p *Package, call *ast.CallExpr, sc *scope, mayBlock map[*types.Func]bool) []Finding {
	switch lockCallKind(p, call) {
	case condExempt:
		return nil // sync.Cond.Wait releases the mutex: the park pattern
	case blockingCall:
		return l.flagIfHeld(p, call, sc, "blocking call "+types.ExprString(call.Fun))
	case lockAcquire, lockRelease:
		return nil // handled statement-wise; expression-position lock ops are not idiomatic here
	}
	// Static callee: consult the program-wide may-block facts.
	if fn := staticCallee(p, call); fn != nil {
		if mayBlock[fn] {
			return l.flagIfHeld(p, call, sc,
				"call to "+prog.funcDisplayName(fn, p)+", which may block or acquire a lock")
		}
		return nil
	}
	// Conversions and builtins are not invocations.
	if isConversionOrBuiltin(p, call) {
		return nil
	}
	// A call through a function value: a hook. The holder cannot know what
	// it does.
	if t := p.Info.TypeOf(call.Fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			return l.flagIfHeld(p, call, sc,
				"invoking function value "+types.ExprString(call.Fun)+" (hook)")
		}
	}
	return nil
}

// staticCallee resolves a call to its named function or method (interface
// methods resolve to the abstract method, which has no facts — interface
// calls under locks are judged by their devirtualized implementations'
// facts only through the graph, so here they return nil and are treated as
// method calls, not hooks).
func staticCallee(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isConversionOrBuiltin reports whether call is a type conversion or a
// builtin like len/append/close.
func isConversionOrBuiltin(p *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch p.Info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := p.Info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.FuncType, *ast.InterfaceType, *ast.StarExpr:
		return true
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// flagIfHeld emits one finding per held mutex for a blocking construct.
func (l *LockScope) flagIfHeld(p *Package, n ast.Node, sc *scope, what string) []Finding {
	var out []Finding
	for _, key := range sc.heldKeys() {
		out = append(out, p.finding(l.Name(), n,
			"%s while %s is held; move it outside the critical section", what, key))
	}
	return out
}

// selectHasDefault reports whether a select statement has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
