package lint

import (
	"strings"
	"testing"
)

func indexFixturePass(p *Package) *IndexDiscipline {
	return &IndexDiscipline{
		TargetPkg:  p.Path,
		Root:       "(*BEng).Step",
		PosArrays:  map[string]bool{"hot": true},
		SlotArrays: map[string]bool{"aIdx": true},
		SlotSlices: map[string]bool{"act": true},
		SlotParams: map[string]bool{"id": true},
		PosParams:  map[string]bool{"pos": true},
		SlotFactor: "numVCs",
	}
}

func TestIndexDisciplineFixture(t *testing.T) {
	p := loadFixture(t, "indexbad")
	checkFixture(t, "indexbad", indexFixturePass(p))
}

// TestIndexDisciplineMissingRoot: renaming the audited entry point must
// surface as a finding, not silently disarm the discipline.
func TestIndexDisciplineMissingRoot(t *testing.T) {
	p := loadFixture(t, "indexbad")
	pass := indexFixturePass(p)
	pass.Root = "(*BEng).Tick"
	got := Run([]*Package{p}, []Pass{pass})
	if len(got) != 1 || !strings.Contains(got[0].Msg, "(*BEng).Tick not found") {
		t.Errorf("missing root reported as %v, want one configuration finding", got)
	}
}
