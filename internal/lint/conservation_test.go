package lint

import (
	"path"
	"strings"
	"testing"
)

func conservationFixturePass(p *Package) *Conservation {
	extPath := path.Dir(p.Path) + "/engineext"
	return &Conservation{
		Model: &EngineModel{
			TargetPkg:   p.Path,
			ScalarTypes: []string{"Eng"},
			CallPrefix:  map[string]string{extPath + ".Pool": "pool"},
		},
		Roots: []string{"(*Eng).Step"},
		Quantities: []ConservedQuantity{
			{Name: "vc-ownership", Counter: "owners"},
			{Name: "credit", Counter: "credits"},
			{Name: "injection-ports", Counter: "ports"},
			{Name: "messages", Acquire: "pool.Get", Release: "pool.Put", LeakCheck: true},
		},
	}
}

func TestConservationFixture(t *testing.T) {
	p := loadFixture(t, "conservationbad")
	checkFixture(t, "conservationbad", conservationFixturePass(p))
}

// TestConservationMissingRoot: renaming the audited entry point must
// surface as a finding, not silently disarm the ledger.
func TestConservationMissingRoot(t *testing.T) {
	p := loadFixture(t, "conservationbad")
	pass := conservationFixturePass(p)
	pass.Roots = []string{"(*Eng).Tick"}
	got := Run([]*Package{p}, []Pass{pass})
	if len(got) != 1 || !strings.Contains(got[0].Msg, "(*Eng).Tick not found") {
		t.Errorf("missing root reported as %v, want one configuration finding", got)
	}
}
