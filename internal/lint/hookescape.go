package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HookEscape polices the engine/observer boundary: a value handed to a hook
// (any call through a plain function value — cfg.OnTick, cfg.OnSample,
// cfg.OnDeliver, an injected clock, a scheduler task) escapes the engine's
// control. The subscriber may retain it across cycles, so it must be a deep
// copy: no argument may carry a reference into engine-owned state, or the
// next cycle's in-place mutation races with (or silently rewrites) what the
// observer thinks it captured.
//
// The pass walks each hook argument's provenance:
//
//   - composite literals are checked field by field (a TickEvent built from
//     freshly-returned values is fine; one embedding n.buf is not);
//   - a local variable is traced one assignment back to what produced it;
//   - call results are presumed owned by the caller (accessor methods like
//     WormStates() return copies by contract);
//   - a selector or index chain rooted at the receiver, a parameter, or a
//     package-level variable whose type carries references (pointer, slice,
//     map, channel, interface, or a struct containing one) is flagged.
//
// A deliberate zero-copy handoff — a pooled pointer documented as valid only
// during the callback — is annotated in place with //lint:allow hookescape
// and a reason.
type HookEscape struct{}

// NewHookEscape returns the pass.
func NewHookEscape() *HookEscape { return &HookEscape{} }

// Name returns "hookescape".
func (*HookEscape) Name() string { return "hookescape" }

// Doc describes the pass.
func (*HookEscape) Doc() string {
	return "arguments to hook (function-value) calls must not carry references into engine-owned state"
}

// RunProgram checks every hook invocation in every declared function.
func (h *HookEscape) RunProgram(prog *Program) []Finding {
	var out []Finding
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, h.checkDecl(p, fd)...)
			}
		}
	}
	return out
}

// checkDecl flags escaping hook arguments inside one function declaration.
func (h *HookEscape) checkDecl(p *Package, fd *ast.FuncDecl) []Finding {
	owned := ownedRoots(p, fd)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		hook, isHook := hookCallName(p, call)
		if !isHook {
			return true
		}
		for _, arg := range call.Args {
			if desc, bad := h.escapes(p, fd, owned, arg, 0); bad {
				out = append(out, p.finding(h.Name(), arg,
					"%s passed to hook %s references engine-owned state; pass a deep copy (the subscriber may retain it across cycles)", desc, hook))
			}
		}
		return true
	})
	return out
}

// hookCallName reports whether call invokes a hook — a function value held
// in a struct field (cfg.OnTick, p.now) or a package-level variable — and
// names it for the diagnostic. Static function and method calls, conversions,
// builtins and local closure helpers (same-function code, nothing escapes)
// are not hooks.
func hookCallName(p *Package, call *ast.CallExpr) (string, bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; !ok || !tv.IsValue() {
		return "", false
	}
	if _, ok := p.Info.TypeOf(fun).Underlying().(*types.Signature); !ok {
		return "", false
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[f].(*types.Var); ok && isPackageVar(p, v) {
			return f.Name, true
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[f]; ok && sel.Kind() == types.FieldVal {
			return types.ExprString(f), true
		}
	}
	return "", false
}

// ownedRoots collects the variables that stand for engine-owned state inside
// fd: the receiver and the parameters. Package-level variables are detected
// by scope instead.
func ownedRoots(p *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	owned := make(map[*types.Var]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					owned[v] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return owned
}

// escapes reports whether the hook argument e carries a reference into
// engine-owned state, with a short description of the offending expression.
// depth bounds the one-assignment-back provenance trace.
func (h *HookEscape) escapes(p *Package, fd *ast.FuncDecl, owned map[*types.Var]bool, e ast.Expr, depth int) (string, bool) {
	if depth > 4 {
		return "", false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if desc, bad := h.escapes(p, fd, owned, v, depth+1); bad {
				return desc, true
			}
		}
		return "", false
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &T{...}: a fresh value, but its fields may still leak;
			// &x.f: the address of engine state, always a leak.
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return h.escapes(p, fd, owned, e.X, depth+1)
			}
			if rootedInOwned(p, owned, e.X) {
				return types.ExprString(e), true
			}
		}
		return "", false
	case *ast.Ident:
		v, ok := p.Info.Uses[e].(*types.Var)
		if !ok {
			return "", false
		}
		if (owned[v] || isPackageVar(p, v)) && carriesRef(v.Type(), nil) {
			// A parameter passed straight through is the caller's problem,
			// not an engine leak — only the receiver and package state are.
			if isReceiverVar(p, fd, v) || isPackageVar(p, v) {
				return e.Name, true
			}
			return "", false
		}
		// Local variable: trace one assignment back to what produced it.
		if rhs := localAssignment(p, fd, v); rhs != nil {
			return h.escapes(p, fd, owned, rhs, depth+1)
		}
		return "", false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
		if t := p.Info.TypeOf(e); t != nil && carriesRef(t, nil) && rootedInOwned(p, owned, e) {
			return types.ExprString(e), true
		}
		return "", false
	}
	return "", false
}

// rootedInOwned walks a selector/index/slice/deref chain to its base
// identifier and reports whether that base is the receiver, a parameter, or
// a package-level variable.
func rootedInOwned(p *Package, owned map[*types.Var]bool, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[x]; !ok || sel.Kind() != types.FieldVal {
				return false // method value or qualified ident, not state
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := p.Info.Uses[x].(*types.Var)
			return ok && (owned[v] || isPackageVar(p, v))
		default:
			return false
		}
	}
}

// localAssignment finds the rhs of an assignment to v inside fd's body, or
// nil. With several assignments the last one wins — a heuristic, but hook
// arguments are almost always built immediately before the call.
func localAssignment(p *Package, fd *ast.FuncDecl, v *types.Var) ast.Expr {
	var rhs ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if p.Info.Defs[id] == v || p.Info.Uses[id] == v {
				rhs = as.Rhs[i]
			}
		}
		return true
	})
	return rhs
}

// isPackageVar reports whether v is declared at package scope.
func isPackageVar(p *Package, v *types.Var) bool {
	return v.Parent() == p.Types.Scope()
}

// isReceiverVar reports whether v is fd's receiver.
func isReceiverVar(p *Package, fd *ast.FuncDecl, v *types.Var) bool {
	if fd.Recv == nil {
		return false
	}
	for _, field := range fd.Recv.List {
		for _, name := range field.Names {
			if p.Info.Defs[name] == v {
				return true
			}
		}
	}
	return false
}

// carriesRef reports whether a value of type t shares memory when shallowly
// copied: pointers, slices, maps, channels, interfaces, or an aggregate
// containing one. Function values and scalars do not count.
func carriesRef(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Array:
		return carriesRef(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
