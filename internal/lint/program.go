package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Program is the whole loaded module as one analysis unit: every package the
// caller passed to Run, an index from function objects to their
// declarations, a merged //lint:allow index, and (built on demand) the
// cross-package call graph program passes share.
type Program struct {
	// Pkgs holds the loaded packages sorted by import path.
	Pkgs []*Package

	decls   map[*types.Func]*ast.FuncDecl
	declPkg map[*types.Func]*Package
	byPath  map[string]*Package
	allow   map[allowKey]bool
	reason  map[allowKey]string
	// used records which suppressions this Run exercised, for unusedallow.
	used map[allowKey]bool

	graph *CallGraph
	// graphBuilds counts buildCallGraph invocations; the build-once
	// contract behind sharing one Program across passes and certifications.
	graphBuilds int
	declList    []declEntry
	effects     map[*types.Func]*funcEffects
}

// declEntry is one declared function body in deterministic program order:
// packages by import path, files by name, declarations in source order.
type declEntry struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Fn   *types.Func
}

// NewProgram indexes the packages into one analysis unit.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:    pkgs,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		declPkg: make(map[*types.Func]*Package),
		byPath:  make(map[string]*Package, len(pkgs)),
		allow:   make(map[allowKey]bool),
		reason:  make(map[allowKey]string),
		used:    make(map[allowKey]bool),
	}
	for _, p := range pkgs {
		prog.byPath[p.Path] = p
		for k, v := range p.allow {
			if v {
				prog.allow[k] = true
			}
		}
		for k, v := range p.allowReason {
			if _, ok := prog.reason[k]; !ok {
				prog.reason[k] = v
			}
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					prog.decls[obj] = fd
					prog.declPkg[obj] = p
				}
			}
		}
	}
	return prog
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// Allowed reports whether any loaded package carries an //lint:allow
// directive suppressing pass findings at pos.
func (prog *Program) Allowed(pass string, pos token.Position) bool {
	return prog.allow[allowKey{file: pos.Filename, line: pos.Line, pass: pass}]
}

// AllowReason returns the free-text reason of the directive suppressing pass
// findings at pos, or "" when there is none.
func (prog *Program) AllowReason(pass string, pos token.Position) string {
	return prog.reason[allowKey{file: pos.Filename, line: pos.Line, pass: pass}]
}

// markUsed records that a directive covering (pass, pos) suppressed a real
// finding in this Run.
func (prog *Program) markUsed(pass string, pos token.Position) {
	prog.used[allowKey{file: pos.Filename, line: pos.Line, pass: pass}] = true
}

// usedAt reports whether a suppression keyed (file, line, pass) fired.
func (prog *Program) usedAt(file string, line int, pass string) bool {
	return prog.used[allowKey{file: file, line: line, pass: pass}]
}

// modulePrefix is the leading path segment of the loaded packages ("wormsim"
// for the real module), used to tell module functions apart from the
// standard library when classifying call effects.
func (prog *Program) modulePrefix() string {
	if len(prog.Pkgs) == 0 {
		return ""
	}
	path := prog.Pkgs[0].Path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// Decl returns fn's declaration and owning package, or (nil, nil) for
// functions without a loaded body (stdlib, interface methods).
func (prog *Program) Decl(fn *types.Func) (*ast.FuncDecl, *Package) {
	return prog.decls[fn], prog.declPkg[fn]
}

// FindFunc resolves a "Func" / "(Recv).Func" / "(*Recv).Func" spec inside
// the package with the given import path, or nil.
func (prog *Program) FindFunc(pkgPath, spec string) *types.Func {
	p := prog.byPath[pkgPath]
	if p == nil {
		return nil
	}
	for fn, fd := range prog.decls {
		if prog.declPkg[fn] == p && funcDeclName(fd) == spec {
			return fn
		}
	}
	return nil
}

// Graph returns the program's call graph, building it on first use so
// package-only pass runs never pay for it. The graph is cached: CI's lint
// job and the certification gate share one type-checked load and one graph.
func (prog *Program) Graph() *CallGraph {
	if prog.graph == nil {
		prog.graphBuilds++
		prog.graph = buildCallGraph(prog)
	}
	return prog.graph
}

// funcDecls returns every declared function body in deterministic program
// order, built once and shared by all whole-program passes so each pass walk
// is a slice scan rather than a fresh AST traversal.
func (prog *Program) funcDecls() []declEntry {
	if prog.declList == nil {
		for _, q := range prog.Pkgs {
			for _, f := range q.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := q.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					prog.declList = append(prog.declList, declEntry{Pkg: q, Decl: fd, Fn: fn})
				}
			}
		}
		if prog.declList == nil {
			prog.declList = []declEntry{}
		}
	}
	return prog.declList
}

// funcDisplayName renders fn for diagnostics: "pkg.Func" or
// "pkg.(*Recv).Func", with the package elided for the anchor package.
func (prog *Program) funcDisplayName(fn *types.Func, anchor *Package) string {
	fd, p := prog.Decl(fn)
	name := fn.Name()
	if fd != nil {
		name = funcDeclName(fd)
	}
	if p == nil || p == anchor {
		return name
	}
	return p.Types.Name() + "." + name
}
