package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Program is the whole loaded module as one analysis unit: every package the
// caller passed to Run, an index from function objects to their
// declarations, a merged //lint:allow index, and (built on demand) the
// cross-package call graph program passes share.
type Program struct {
	// Pkgs holds the loaded packages sorted by import path.
	Pkgs []*Package

	decls   map[*types.Func]*ast.FuncDecl
	declPkg map[*types.Func]*Package
	byPath  map[string]*Package
	allow   map[allowKey]bool

	graph *CallGraph
}

// NewProgram indexes the packages into one analysis unit.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:    pkgs,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		declPkg: make(map[*types.Func]*Package),
		byPath:  make(map[string]*Package, len(pkgs)),
		allow:   make(map[allowKey]bool),
	}
	for _, p := range pkgs {
		prog.byPath[p.Path] = p
		for k, v := range p.allow { //lint:allow simdeterminism (merging an index; order-free)
			if v {
				prog.allow[k] = true
			}
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					prog.decls[obj] = fd
					prog.declPkg[obj] = p
				}
			}
		}
	}
	return prog
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// Allowed reports whether any loaded package carries an //lint:allow
// directive suppressing pass findings at pos.
func (prog *Program) Allowed(pass string, pos token.Position) bool {
	return prog.allow[allowKey{file: pos.Filename, line: pos.Line, pass: pass}]
}

// Decl returns fn's declaration and owning package, or (nil, nil) for
// functions without a loaded body (stdlib, interface methods).
func (prog *Program) Decl(fn *types.Func) (*ast.FuncDecl, *Package) {
	return prog.decls[fn], prog.declPkg[fn]
}

// FindFunc resolves a "Func" / "(Recv).Func" / "(*Recv).Func" spec inside
// the package with the given import path, or nil.
func (prog *Program) FindFunc(pkgPath, spec string) *types.Func {
	p := prog.byPath[pkgPath]
	if p == nil {
		return nil
	}
	for fn, fd := range prog.decls { //lint:allow simdeterminism (first exact match; unique key)
		if prog.declPkg[fn] == p && funcDeclName(fd) == spec {
			return fn
		}
	}
	return nil
}

// Graph returns the program's call graph, building it on first use so
// package-only pass runs never pay for it. The graph is cached: CI's lint
// job and the certification gate share one type-checked load and one graph.
func (prog *Program) Graph() *CallGraph {
	if prog.graph == nil {
		prog.graph = buildCallGraph(prog)
	}
	return prog.graph
}

// funcDisplayName renders fn for diagnostics: "pkg.Func" or
// "pkg.(*Recv).Func", with the package elided for the anchor package.
func (prog *Program) funcDisplayName(fn *types.Func, anchor *Package) string {
	fd, p := prog.Decl(fn)
	name := fn.Name()
	if fd != nil {
		name = funcDeclName(fd)
	}
	if p == nil || p == anchor {
		return name
	}
	return p.Types.Name() + "." + name
}
