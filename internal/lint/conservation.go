package lint

// Conservation proves flit/credit balance over the engine call graphs: every
// resource an engine acquires it must also release. Quantities come in two
// shapes. A *counter* quantity names a canonical state component (through
// the dataflow layer's write canonicalization, so the scalar vc* arrays and
// the batch hot-state unify): the reachable graph of each root must contain
// both an increment and a decrement, or the counter only ever moves one way
// and the invariant it tracks cannot hold. An *acquire/release* quantity
// names a call pair (pool.Get/pool.Put, limiter.Admit/limiter.Release):
// both ends must appear on the graph, and for leak-checked quantities every
// acquire's result must reach a release or a state sink on all paths out of
// the acquiring function — an early `continue` that forgets to return a
// message to the pool is exactly the bug this catches.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ConservedQuantity describes one balanced resource.
type ConservedQuantity struct {
	Name string
	// Counter is a canonical state component balanced by ++/+= and --/-=.
	Counter string
	// Acquire/Release name a paired call-event couple.
	Acquire, Release string
	// LeakCheck additionally requires each acquire's result to reach a
	// release or a state sink on every path of the acquiring function.
	LeakCheck bool
}

// Conservation is the pass. Construct with NewConservation, or populate the
// fields for fixture models.
type Conservation struct {
	Model      *EngineModel
	Roots      []string // FindFunc specs in Model.TargetPkg, audited per root
	Quantities []ConservedQuantity
}

// NewConservation returns the pass configured for wormsim's engines: both
// step roots, with the VC-ownership, injection-port, in-flight, message-pool
// and congestion-credit quantities.
func NewConservation() *Conservation {
	return &Conservation{
		Model: wormsimEngineModel(),
		Roots: []string{"(*Network).Step", "(*BatchNetwork).Step"},
		Quantities: []ConservedQuantity{
			{Name: "vc-ownership", Counter: "owners"},
			{Name: "injection-ports", Counter: "injecting"},
			{Name: "in-flight", Counter: "inFlight"},
			{Name: "messages", Acquire: "pool.Get", Release: "pool.Put", LeakCheck: true},
			{Name: "congestion-credit", Acquire: "limiter.Admit", Release: "limiter.Release"},
		},
	}
}

// Name returns "conservation".
func (*Conservation) Name() string { return "conservation" }

// Doc describes the pass.
func (*Conservation) Doc() string {
	return "engine resources must balance: counters move both ways and every pool acquire reaches a release on all paths"
}

// ledgerOp is one movement of a conserved quantity.
type ledgerOp struct {
	quantity string
	inc      bool
	pos      token.Position
}

// RunProgram audits every root's reachable graph.
func (c *Conservation) RunProgram(prog *Program) []Finding {
	pkg := prog.Package(c.Model.TargetPkg)
	if pkg == nil {
		return nil
	}
	var findings []Finding
	g := prog.Graph()
	for _, rootSpec := range c.Roots {
		root := prog.FindFunc(c.Model.TargetPkg, rootSpec)
		if root == nil {
			findings = append(findings, Finding{
				Pos:  pkg.Fset.Position(pkg.Files[0].Pos()),
				Pass: c.Name(),
				Msg:  fmt.Sprintf("conservation root %s not found in %s; update the pass configuration", rootSpec, c.Model.TargetPkg),
			})
			continue
		}
		reach := g.ReachableFrom(root)
		incs := make(map[string][]token.Position)
		decs := make(map[string][]token.Position)
		forEachReachableDecl(prog, reach, func(q *Package, fd *ast.FuncDecl, fn *types.Func) {
			if q.Path != c.Model.TargetPkg {
				return
			}
			for _, op := range c.scanLedger(q, fd) {
				if op.inc {
					incs[op.quantity] = append(incs[op.quantity], op.pos)
				} else {
					decs[op.quantity] = append(decs[op.quantity], op.pos)
				}
			}
			findings = append(findings, c.checkLeaks(q, fd)...)
		})
		for _, quant := range c.Quantities {
			in, de := incs[quant.Name], decs[quant.Name]
			switch {
			case len(in) > 0 && len(de) == 0:
				findings = append(findings, Finding{
					Pos:  in[0],
					Pass: c.Name(),
					Msg: fmt.Sprintf("%s acquired here is never released on the %s graph (%d acquire site(s), no release)",
						quant.Name, rootSpec, len(in)),
				})
			case len(de) > 0 && len(in) == 0:
				findings = append(findings, Finding{
					Pos:  de[0],
					Pass: c.Name(),
					Msg: fmt.Sprintf("%s released here is never acquired on the %s graph (%d release site(s), no acquire)",
						quant.Name, rootSpec, len(de)),
				})
			}
		}
	}
	return findings
}

// scanLedger collects every movement of a configured quantity in fd:
// ++/--/+=/-= on counter components, and acquire/release calls.
func (c *Conservation) scanLedger(pkg *Package, fd *ast.FuncDecl) []ledgerOp {
	var ops []ledgerOp
	aliases := collectFieldAliases(pkg, fd)
	byCounter := make(map[string]string) // canonical component -> quantity
	byCall := make(map[string]struct {
		quantity string
		inc      bool
	})
	for _, q := range c.Quantities {
		if q.Counter != "" {
			byCounter[q.Counter] = q.Name
		}
		if q.Acquire != "" {
			byCall[q.Acquire] = struct {
				quantity string
				inc      bool
			}{q.Name, true}
			byCall[q.Release] = struct {
				quantity string
				inc      bool
			}{q.Name, false}
		}
	}
	record := func(target ast.Expr, inc bool, pos token.Pos) {
		canon := canonicalWrite(c.Model, pkg, aliases, target)
		if quant, ok := byCounter[canon]; ok {
			ops = append(ops, ledgerOp{quantity: quant, inc: inc, pos: pkg.Fset.Position(pos)})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.IncDecStmt:
			record(t.X, t.Tok == token.INC, t.Pos())
		case *ast.AssignStmt:
			if t.Tok == token.ADD_ASSIGN || t.Tok == token.SUB_ASSIGN {
				for _, lhs := range t.Lhs {
					record(lhs, t.Tok == token.ADD_ASSIGN, t.Pos())
				}
			}
		case *ast.CallExpr:
			if label := c.callLabel(pkg, t); label != "" {
				if mv, ok := byCall[label]; ok {
					ops = append(ops, ledgerOp{quantity: mv.quantity, inc: mv.inc, pos: pkg.Fset.Position(t.Pos())})
				}
			}
		}
		return true
	})
	return ops
}

// callLabel classifies a call the same way the footprint extractor does,
// for foreign methods only (acquire/release pairs live on pool and limiter
// values).
func (c *Conservation) callLabel(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	prefix, ok := c.Model.CallPrefix[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
	if !ok {
		return ""
	}
	return prefix + "." + fn.Name()
}

// checkLeaks enforces the path discipline for leak-checked quantities: a
// value produced by an acquire call must reach a release or a state sink —
// a store into engine state, or being handed to an intra-package callee —
// both on the straight-line remainder of its block and inside any early-exit
// branch between the acquire and the sink.
func (c *Conservation) checkLeaks(pkg *Package, fd *ast.FuncDecl) []Finding {
	leakCalls := make(map[string]string) // call label -> quantity name
	releases := make(map[string]bool)    // release labels of leak-checked quantities
	for _, q := range c.Quantities {
		if q.LeakCheck && q.Acquire != "" {
			leakCalls[q.Acquire] = q.Name
			releases[q.Release] = true
		}
	}
	if len(leakCalls) == 0 {
		return nil
	}
	aliases := collectFieldAliases(pkg, fd)
	var findings []Finding
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					if quant, isAcq := leakCalls[c.callLabel(pkg, call)]; isAcq {
						if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							obj := pkg.Info.Defs[id]
							if obj == nil {
								obj = pkg.Info.Uses[id]
							}
							if obj != nil && !c.resolvedAfter(pkg, aliases, stmts[i+1:], obj, releases) {
								findings = append(findings, Finding{
									Pos:  pkg.Fset.Position(call.Pos()),
									Pass: c.Name(),
									Msg: fmt.Sprintf("%s acquired here can leak: not released or stored into engine state on every path (early exits between acquire and sink must release)",
										quant),
								})
							}
						}
					}
				}
			}
			// Recurse into nested bodies for further acquires.
			switch t := stmt.(type) {
			case *ast.BlockStmt:
				walk(t.List)
			case *ast.IfStmt:
				walk(t.Body.List)
				if els, ok := t.Else.(*ast.BlockStmt); ok {
					walk(els.List)
				}
			case *ast.ForStmt:
				walk(t.Body.List)
			case *ast.RangeStmt:
				walk(t.Body.List)
			case *ast.SwitchStmt:
				for _, cl := range t.Body.List {
					if cc, ok := cl.(*ast.CaseClause); ok {
						walk(cc.Body)
					}
				}
			}
		}
	}
	walk(fd.Body.List)
	return findings
}

// resolvedAfter scans the statements following an acquire: the value is
// resolved when a sink appears on the straight-line remainder, and every
// early-exit branch (an if whose body ends in return/continue/break)
// encountered before then must sink it itself.
func (c *Conservation) resolvedAfter(pkg *Package, aliases map[types.Object][]string, rest []ast.Stmt, obj types.Object, releases map[string]bool) bool {
	for _, stmt := range rest {
		if ifs, ok := stmt.(*ast.IfStmt); ok && terminates(ifs.Body) {
			if !c.containsSink(pkg, aliases, ifs.Body, obj, releases) {
				return false
			}
			continue
		}
		if c.containsSink(pkg, aliases, stmt, obj, releases) {
			return true
		}
	}
	return false
}

// terminates reports whether a block's last statement exits the normal
// flow.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch t := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return t.Tok == token.CONTINUE || t.Tok == token.BREAK || t.Tok == token.GOTO
	}
	return false
}

// containsSink reports whether n releases obj or stores it into engine
// state: a release call taking obj, obj passed to an intra-package callee,
// or an assignment of obj whose target canonicalizes to a state component.
func (c *Conservation) containsSink(pkg *Package, aliases map[types.Object][]string, n ast.Node, obj types.Object, releases map[string]bool) bool {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	sunk := false
	ast.Inspect(n, func(m ast.Node) bool {
		if sunk {
			return false
		}
		switch t := m.(type) {
		case *ast.CallExpr:
			argUses := false
			for _, arg := range t.Args {
				if usesObj(arg) {
					argUses = true
					break
				}
			}
			if !argUses {
				return true
			}
			label := c.callLabel(pkg, t)
			if releases[label] {
				sunk = true
				return false
			}
			if fn := calleeFunc(pkg, t); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == c.Model.TargetPkg {
				sunk = true
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range t.Rhs {
				if i < len(t.Lhs) && usesObj(rhs) &&
					canonicalWrite(c.Model, pkg, aliases, t.Lhs[i]) != "" {
					sunk = true
					return false
				}
			}
		}
		return true
	})
	return sunk
}
