package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HookType identifies one observability hook receiver type whose call sites
// must be nil-guarded.
type HookType struct {
	// TypePath/TypeName identify the hook receiver type.
	TypePath string
	TypeName string
	// NilSafe lists methods that check their own receiver and are therefore
	// safe to call unguarded.
	NilSafe map[string]bool
}

// HookGuard enforces the observability contract "a disabled hook is one
// branch per call site, never a panic": each registered hook pointer
// (telemetry collector, phase timer, observatory publisher) is nil whenever
// its feature is off, so every call site must be dominated by a nil guard —
// either an enclosing `if c != nil { ... }` (conjunctions count) or an
// earlier `if c == nil { return }` in the same function. Methods that check
// their own receiver are exempt per type, as is each type's defining
// package.
type HookGuard struct {
	Types []HookType
}

// NewHookGuard guards wormsim's observability hook types: the telemetry
// collector and phase-profiling timer the engine calls every cycle, the
// profiler handle itself, and the observatory publisher the CLIs feed.
func NewHookGuard() *HookGuard {
	return &HookGuard{Types: []HookType{
		{
			TypePath: "wormsim/internal/telemetry",
			TypeName: "Collector",
			NilSafe:  map[string]bool{"Tracing": true, "Recorded": true, "Events": true, "LastEvents": true},
		},
		{
			TypePath: "wormsim/internal/telemetry",
			TypeName: "PhaseTimer",
		},
		{
			TypePath: "wormsim/internal/telemetry",
			TypeName: "PhaseProfiler",
			NilSafe:  map[string]bool{"Timer": true},
		},
		{
			TypePath: "wormsim/internal/observatory",
			TypeName: "Publisher",
		},
		{
			// The congestion forensics analyzer is nil whenever forensics is
			// off; the engine touches it on the inject/allocate hot path.
			TypePath: "wormsim/internal/forensics",
			TypeName: "Analyzer",
		},
	}}
}

// Name returns "hookguard".
func (*HookGuard) Name() string { return "hookguard" }

// Doc describes the pass.
func (h *HookGuard) Doc() string {
	return "require telemetry/observatory hook call sites to be nil-guarded"
}

// Run reports unguarded hook calls.
func (h *HookGuard) Run(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			ht := h.hookType(p, sel.X)
			if ht == nil || ht.TypePath == p.Path {
				return // not a hook, or the type's own package
			}
			if ht.NilSafe[sel.Sel.Name] {
				return
			}
			recv := types.ExprString(sel.X)
			if guardedByIf(stack, call, recv) || guardedByEarlyExit(p, stack, call, recv) {
				return
			}
			f := p.finding(h.Name(), call,
				"%s hook %s.%s is not nil-guarded; wrap it in `if %s != nil { ... }`",
				ht.TypeName, recv, sel.Sel.Name, recv)
			// When the call is a whole statement the guard can be added
			// mechanically; expression positions need a human.
			if len(stack) > 0 {
				if es, ok := stack[len(stack)-1].(*ast.ExprStmt); ok && es.X == call {
					ind := indentAt(p.Fset, es.Pos())
					f.Fix = &Fix{
						Message: "wrap " + recv + "." + sel.Sel.Name + " in a nil guard",
						Edits: []TextEdit{
							{Pos: es.Pos(), End: es.Pos(), NewText: "if " + recv + " != nil {\n" + ind + "\t"},
							{Pos: es.End(), End: es.End(), NewText: "\n" + ind + "}"},
						},
					}
				}
			}
			out = append(out, f)
		})
	}
	return out
}

// hookType returns the registered hook type e points at, if any.
func (h *HookGuard) hookType(p *Package, e ast.Expr) *HookType {
	t := p.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	for i := range h.Types {
		ht := &h.Types[i]
		if obj.Name() == ht.TypeName && obj.Pkg().Path() == ht.TypePath {
			return ht
		}
	}
	return nil
}

// guardedByIf reports whether some enclosing if-statement's condition
// asserts recv != nil with the call inside its then-branch.
func guardedByIf(stack []ast.Node, call *ast.CallExpr, recv string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		inBody := call.Pos() >= ifs.Body.Pos() && call.End() <= ifs.Body.End()
		if inBody && condAssertsNonNil(ifs.Cond, recv) {
			return true
		}
	}
	return false
}

// condAssertsNonNil reports whether cond (or any && conjunct of it)
// compares recv against nil with !=.
func condAssertsNonNil(cond ast.Expr, recv string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condAssertsNonNil(c.X, recv)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return condAssertsNonNil(c.X, recv) || condAssertsNonNil(c.Y, recv)
		case token.NEQ:
			return isNilCheck(c.X, c.Y, recv) || isNilCheck(c.Y, c.X, recv)
		}
	}
	return false
}

func isNilCheck(x, y ast.Expr, recv string) bool {
	id, ok := y.(*ast.Ident)
	return ok && id.Name == "nil" && types.ExprString(x) == recv
}

// guardedByEarlyExit reports whether the enclosing function contains an
// earlier `if recv == nil { return/continue/panic }` guard.
func guardedByEarlyExit(p *Package, stack []ast.Node, call *ast.CallExpr, recv string) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			body = fn.Body
		case *ast.FuncDecl:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.End() > call.Pos() || len(ifs.Body.List) == 0 {
			return true
		}
		bin, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			return true
		}
		if !isNilCheck(bin.X, bin.Y, recv) && !isNilCheck(bin.Y, bin.X, recv) {
			return true
		}
		switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
		case *ast.ReturnStmt:
			guarded = true
		case *ast.BranchStmt:
			guarded = true
		case *ast.ExprStmt:
			if c, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					guarded = true
				}
			}
		}
		return true
	})
	return guarded
}
