package lint

// EngineParity proves the scalar and batch engines implement one routing
// semantics. Every paired function — (*Network).Step vs (*BatchNetwork).Step
// and their intra-package callees — gets a semantic footprint extracted by
// the dataflow layer (dataflow.go): config/topology reads, canonical state
// writes, and program-order sequences of RNG draws, telemetry/forensics
// hooks, pool acquire/release calls, and paired/shared callees. The pass
// diffs each pair dimension by dimension and fails on any divergence not
// covered by a //lint:parity audit:
//
//	//lint:parity writes,draws reason the divergence is intentional
//
// placed in either paired declaration's doc comment. The directive audits
// exactly the named dimensions; an audit whose dimension actually matches
// is stale and becomes a finding of its own, so the audited surface can
// only shrink. CertifyParity emits the full footprint comparison as a
// machine-readable certificate set (CI pins a golden).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ParityPair names one scalar/batch function pair, by the FindFunc specs
// within the model's target package.
type ParityPair struct {
	Name   string // canonical pair name ("inject")
	Scalar string // e.g. "(*Network).inject"
	Batch  string // e.g. "(*BatchNetwork).injectR"
}

// EngineParity is the pass; see the package comment above. The zero value
// is unusable — construct with NewEngineParity or populate Model and Pairs
// (fixture tests build small models of their own).
type EngineParity struct {
	Model *EngineModel
	Pairs []ParityPair
}

// NewEngineParity returns the pass configured for wormsim's twin engines:
// every function of the scalar per-cycle decision procedure paired with its
// batch twin, over the semantic model of the network package.
func NewEngineParity() *EngineParity {
	return &EngineParity{
		Model: wormsimEngineModel(),
		Pairs: []ParityPair{
			{"Step", "(*Network).Step", "(*BatchNetwork).Step"},
			{"inject", "(*Network).inject", "(*BatchNetwork).injectR"},
			{"newInjSlot", "(*Network).newInjSlot", "(*BatchNetwork).newInjSlotR"},
			{"allocate", "(*Network).allocate", "(*BatchNetwork).allocateR"},
			{"route", "(*Network).route", "(*BatchNetwork).routeR"},
			{"transfer", "(*Network).transfer", "(*BatchNetwork).transferR"},
			{"dropReverseConflicts", "(*Network).dropReverseConflicts", "(*BatchNetwork).dropReverseConflictsR"},
			{"applyMove", "(*Network).applyMove", "(*BatchNetwork).applyMoveR"},
			{"deliver", "(*Network).deliver", "(*BatchNetwork).deliverR"},
			{"foreBlocked", "(*Network).foreBlocked", "(*BatchNetwork).foreBlockedR"},
			{"headSlotOf", "(*Network).headSlotOf", "(*BatchNetwork).headSlotOfR"},
			{"WormStates", "(*Network).WormStates", "(*BatchNetwork).WormStatesOf"},
			{"describeStuck", "(*Network).describeStuck", "(*BatchNetwork).describeStuckR"},
			{"tieBreak", "(*Network).tieBreak", "(*batchReplica).tieBreak"},
		},
	}
}

// wormsimEngineModel is the semantic model of wormsim/internal/network: how
// its state, configuration, draws and hooks appear in source on each side.
func wormsimEngineModel() *EngineModel {
	return &EngineModel{
		TargetPkg:   "wormsim/internal/network",
		ScalarTypes: []string{"Network"},
		BatchTypes:  []string{"BatchNetwork", "batchReplica"},
		CallPrefix: map[string]string{
			"wormsim/internal/telemetry.Collector":     "tel",
			"wormsim/internal/telemetry.PhaseTimer":    "prof",
			"wormsim/internal/forensics.Analyzer":      "fore",
			"wormsim/internal/rng.Stream":              "rng",
			"wormsim/internal/message.Pool":            "pool",
			"wormsim/internal/message.Message":         "msg",
			"wormsim/internal/congestion.Limiter":      "limiter",
			"wormsim/internal/routing.Algorithm":       "alg",
			"wormsim/internal/routing.SelectionPolicy": "policy",
			"wormsim/internal/traffic.Workload":        "wl",
			"wormsim/internal/topology.Grid":           "grid",
		},
		FuncLabels: map[string]string{
			"wormsim/internal/traffic.ArrivalsBatch": "traffic.ArrivalsBatch",
		},
		HookFields: map[string]string{
			"OnDeliver":   "cfg.OnDeliver",
			"OnHeaderHop": "cfg.OnHeaderHop",
			"onDeliver":   "cfg.OnDeliver",
			"onHeaderHop": "cfg.OnHeaderHop",
		},
		ConfigFields: map[string]string{
			// Config fields and the batch engine's cached copies.
			"MsgLen": "cfg.MsgLen", "msgLen": "cfg.MsgLen",
			"BufDepth": "cfg.BufDepth", "bufDepth": "cfg.BufDepth",
			"InjectionPorts": "cfg.InjectionPorts", "ports": "cfg.InjectionPorts",
			"RouteDelay": "cfg.RouteDelay", "routeDelay": "cfg.RouteDelay",
			"HalfDuplex": "cfg.HalfDuplex", "halfDuplex": "cfg.HalfDuplex",
			"WatchdogCycles": "cfg.WatchdogCycles", "watchdog": "cfg.WatchdogCycles",
			"OnDeliver": "cfg.OnDeliver", "onDeliver": "cfg.OnDeliver",
			"OnHeaderHop": "cfg.OnHeaderHop", "onHeaderHop": "cfg.OnHeaderHop",
			"Observer": "cfg.Observer",
			// Derived topology shared by both engines. chanVCs is
			// deliberately absent: it is the batch layout's injection-slot
			// boundary, with no scalar counterpart (the scalar engine tests
			// vcCh == -1 instead).
			"numVCs": "numVCs", "nDims": "nDims",
			// Route-table inputs.
			"down": "tbl.down", "rev": "tbl.rev",
			"coord": "tbl.coord", "parity": "tbl.parity",
		},
		StateCanon: map[string]string{
			// Scalar SoA arrays -> canonical VC state components.
			"vcMsg": "msg", "vcNode": "node", "vcFlits": "flits",
			"vcRecvd": "recvd", "vcSent": "sent", "vcReady": "ready",
			"vcOut": "out", "vcRouted": "out", "vcCh": "ch",
			"vcClass": "class", "vcAIdx": "aIdx",
			// Batch hot-state fields -> the same components.
			"hotA.out": "out", "hotA.ready": "ready", "hotA.flits": "flits",
			"hotA.recvd": "recvd", "hotA.sent": "sent", "hotA.node": "node",
			// Whole-element batch bookkeeping is active-list maintenance.
			"hotA": "active", "msgA": "msg", "occ": "active",
			// Batch slot-space growth recycles the scalar free list's role.
			"nextSlot": "injFree",
			// Writes through a *message.Message reached outside the SoA
			// arrays align with writes through vcMsg/msgA elements.
			"Message": "msg",
			// The per-replica container is transparent.
			"reps": "",
		},
		LiteralTypes: map[string]string{"vcHot": "hotA"},
		PoolCalls: map[string]bool{
			"pool.Get": true, "pool.Put": true,
			"limiter.Admit": true, "limiter.Release": true,
		},
		DrawCalls: map[string]bool{
			"wl.Arrivals": true, "traffic.ArrivalsBatch": true,
		},
		DrawPrefixes: map[string]bool{"rng": true, "policy": true},
		HookPrefixes: map[string]bool{"tel": true, "fore": true, "prof": true, "hook": true},
	}
}

// Name returns "engineparity".
func (*EngineParity) Name() string { return "engineparity" }

// Doc describes the pass.
func (*EngineParity) Doc() string {
	return "scalar/batch engine pairs must have matching semantic footprints modulo //lint:parity audits"
}

// parityAudit is one audited dimension of one pair.
type parityAudit struct {
	reason string
	pos    token.Position
}

// pairAnalysis is one pair's extracted comparison.
type pairAnalysis struct {
	pair       ParityPair
	sfp, bfp   footprint
	audits     map[string]parityAudit
	pos        token.Position // batch decl, where findings anchor
	directives []Finding      // malformed //lint:parity directives
}

// RunProgram extracts and diffs every pair's footprints.
func (p *EngineParity) RunProgram(prog *Program) []Finding {
	analyses, findings := p.analyze(prog)
	for _, pa := range analyses {
		findings = append(findings, pa.directives...)
		for _, dim := range parityDims {
			s, b := pa.sfp.dim(dim), pa.bfp.dim(dim)
			equal := stringSlicesEqual(s, b)
			audit, audited := pa.audits[dim]
			switch {
			case equal && audited:
				findings = append(findings, Finding{
					Pos:  audit.pos,
					Pass: p.Name(),
					Msg: fmt.Sprintf("stale parity audit: %s of pair %s already match; drop %q from the //lint:parity directive",
						dim, pa.pair.Name, dim),
				})
			case !equal && !audited:
				findings = append(findings, Finding{
					Pos:  pa.pos,
					Pass: p.Name(),
					Msg: fmt.Sprintf("engine pair %s diverges on %s: %s (annotate //lint:parity %s <reason> if intentional)",
						pa.pair.Name, dim, diffDim(dim, s, b), dim),
				})
			}
		}
	}
	return findings
}

// analyze resolves the pairs and extracts both footprints of each. A
// missing target package (partial load) yields no analyses; a missing pair
// function is a configuration finding.
func (p *EngineParity) analyze(prog *Program) ([]pairAnalysis, []Finding) {
	pkg := prog.Package(p.Model.TargetPkg)
	if pkg == nil {
		return nil, nil
	}
	var findings []Finding
	confFinding := func(spec string) {
		findings = append(findings, Finding{
			Pos:  pkg.Fset.Position(pkg.Files[0].Pos()),
			Pass: p.Name(),
			Msg:  fmt.Sprintf("parity pair function %s not found in %s; update the pass configuration", spec, p.Model.TargetPkg),
		})
	}

	paired := make(map[*types.Func]string)
	type resolved struct {
		pair          ParityPair
		scalar, batch *types.Func
	}
	var pairs []resolved
	for _, pair := range p.Pairs {
		scalar := prog.FindFunc(p.Model.TargetPkg, pair.Scalar)
		batch := prog.FindFunc(p.Model.TargetPkg, pair.Batch)
		if scalar == nil {
			confFinding(pair.Scalar)
		}
		if batch == nil {
			confFinding(pair.Batch)
		}
		if scalar == nil || batch == nil {
			continue
		}
		paired[scalar] = pair.Name
		paired[batch] = pair.Name
		pairs = append(pairs, resolved{pair, scalar, batch})
	}

	var analyses []pairAnalysis
	for _, r := range pairs {
		x := newExtractor(p.Model, prog, paired)
		pa := pairAnalysis{
			pair:   r.pair,
			sfp:    x.footprintOf(r.scalar),
			bfp:    x.footprintOf(r.batch),
			audits: make(map[string]parityAudit),
		}
		bdecl, bpkg := prog.decls[r.batch], prog.declPkg[r.batch]
		sdecl, spkg := prog.decls[r.scalar], prog.declPkg[r.scalar]
		pa.pos = bpkg.Fset.Position(bdecl.Name.Pos())
		for _, side := range []struct {
			decl *ast.FuncDecl
			pkg  *Package
		}{{sdecl, spkg}, {bdecl, bpkg}} {
			audits, bad := parseParityDoc(side.pkg, side.decl, r.pair.Name)
			for dim, a := range audits {
				pa.audits[dim] = a
			}
			pa.directives = append(pa.directives, bad...)
		}
		analyses = append(analyses, pa)
	}
	return analyses, findings
}

// parseParityDoc extracts //lint:parity directives from a declaration's doc
// comment: "//lint:parity <dim>[,<dim>...] <reason>". Unknown dimensions
// and missing reasons are findings.
func parseParityDoc(pkg *Package, decl *ast.FuncDecl, pairName string) (map[string]parityAudit, []Finding) {
	if decl.Doc == nil {
		return nil, nil
	}
	audits := make(map[string]parityAudit)
	var bad []Finding
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:parity")
		if !ok {
			continue
		}
		pos := pkg.Fset.Position(c.Pos())
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			bad = append(bad, Finding{Pos: pos, Pass: "engineparity",
				Msg: "malformed //lint:parity directive: want \"//lint:parity <dim>[,<dim>...] <reason>\""})
			continue
		}
		if len(fields) < 2 {
			bad = append(bad, Finding{Pos: pos, Pass: "engineparity",
				Msg: fmt.Sprintf("//lint:parity directive on pair %s needs a reason", pairName)})
		}
		reason := strings.Join(fields[1:], " ")
		for _, dim := range strings.Split(fields[0], ",") {
			if !isParityDim(dim) {
				bad = append(bad, Finding{Pos: pos, Pass: "engineparity",
					Msg: fmt.Sprintf("unknown footprint dimension %q in //lint:parity directive (want one of %s)",
						dim, strings.Join(parityDims, ", "))})
				continue
			}
			audits[dim] = parityAudit{reason: reason, pos: pos}
		}
	}
	return audits, bad
}

func isParityDim(dim string) bool {
	for _, d := range parityDims {
		if d == dim {
			return true
		}
	}
	return false
}

// diffDim renders a human-readable divergence summary for one dimension.
func diffDim(dim string, s, b []string) string {
	if dim == "reads" || dim == "writes" {
		var sOnly, bOnly []string
		inB := make(map[string]bool, len(b))
		for _, v := range b {
			inB[v] = true
		}
		inS := make(map[string]bool, len(s))
		for _, v := range s {
			inS[v] = true
		}
		for _, v := range s {
			if !inB[v] {
				sOnly = append(sOnly, v)
			}
		}
		for _, v := range b {
			if !inS[v] {
				bOnly = append(bOnly, v)
			}
		}
		var parts []string
		if len(sOnly) > 0 {
			parts = append(parts, "scalar-only ["+strings.Join(sOnly, " ")+"]")
		}
		if len(bOnly) > 0 {
			parts = append(parts, "batch-only ["+strings.Join(bOnly, " ")+"]")
		}
		return strings.Join(parts, ", ")
	}
	return "scalar [" + seqSummary(s) + "] vs batch [" + seqSummary(b) + "]"
}

// seqSummary caps long event sequences in finding messages.
func seqSummary(seq []string) string {
	const limit = 12
	if len(seq) <= limit {
		return strings.Join(seq, " ")
	}
	return strings.Join(seq[:limit], " ") + fmt.Sprintf(" ... +%d", len(seq)-limit)
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ParitySchema versions the parity-certificate format.
const ParitySchema = "wormsim/parity-certificates/v1"

// ParityCertificates is the artifact cmd/wormlint -certify-parity emits and
// CI pins against internal/lint/testdata/parity_certificates.golden.json:
// one certificate per engine pair, plus a content signature.
type ParityCertificates struct {
	Schema string              `json:"schema"`
	Module string              `json:"module"`
	Pairs  []ParityCertificate `json:"pairs"`
	// Signature is sha256 over the canonical JSON of Pairs.
	Signature string `json:"signature"`
}

// ParityCertificate is the proof record for one scalar/batch pair: the full
// footprint comparison, dimension by dimension.
type ParityCertificate struct {
	// Pair is the canonical pair name, Scalar/Batch the function specs.
	Pair   string `json:"pair"`
	Scalar string `json:"scalar"`
	Batch  string `json:"batch"`
	// Status is "proven" when every dimension matches, "audited" when every
	// divergence carries a //lint:parity reason, "divergent" otherwise (a
	// certificate set with a divergent pair fails certification).
	Status string `json:"status"`
	// Dimensions lists all six footprint dimensions in canonical order.
	Dimensions []ParityDimension `json:"dimensions"`
}

// ParityDimension records one dimension's comparison: the shared trace when
// proven, both traces and the audit reason when they diverge.
type ParityDimension struct {
	Name        string   `json:"name"`
	Status      string   `json:"status"` // proven | audited | divergent
	Trace       []string `json:"trace,omitempty"`
	ScalarTrace []string `json:"scalar_trace,omitempty"`
	BatchTrace  []string `json:"batch_trace,omitempty"`
	Reason      string   `json:"reason,omitempty"`
}

// CertifyParity extracts every pair's footprints and builds the certificate
// set. Unlike the lint pass — which skips when the target package is outside
// a partial load — certification demands the engines: a missing pair is an
// error, not a clean certificate.
func CertifyParity(prog *Program, pass *EngineParity, modRoot string) (*ParityCertificates, error) {
	if prog.Package(pass.Model.TargetPkg) == nil {
		return nil, fmt.Errorf("lint: parity target package %s not loaded (certification requires the engines)", pass.Model.TargetPkg)
	}
	analyses, confFindings := pass.analyze(prog)
	if len(confFindings) > 0 {
		return nil, fmt.Errorf("lint: %s", confFindings[0].Msg)
	}
	certs := &ParityCertificates{
		Schema: ParitySchema,
		Module: prog.modulePrefix(),
	}
	for _, pa := range analyses {
		cert := ParityCertificate{
			Pair:   pa.pair.Name,
			Scalar: pa.pair.Scalar,
			Batch:  pa.pair.Batch,
			Status: "proven",
		}
		for _, dim := range parityDims {
			s, b := pa.sfp.dim(dim), pa.bfp.dim(dim)
			pd := ParityDimension{Name: dim}
			if stringSlicesEqual(s, b) {
				pd.Status = "proven"
				pd.Trace = s
			} else if audit, ok := pa.audits[dim]; ok {
				pd.Status = "audited"
				pd.ScalarTrace = s
				pd.BatchTrace = b
				pd.Reason = audit.reason
				if cert.Status == "proven" {
					cert.Status = "audited"
				}
			} else {
				pd.Status = "divergent"
				pd.ScalarTrace = s
				pd.BatchTrace = b
				cert.Status = "divergent"
			}
			cert.Dimensions = append(cert.Dimensions, pd)
		}
		certs.Pairs = append(certs.Pairs, cert)
	}
	sort.Slice(certs.Pairs, func(i, j int) bool { return certs.Pairs[i].Pair < certs.Pairs[j].Pair })
	blob, err := json.Marshal(certs.Pairs)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(blob)
	certs.Signature = "sha256:" + hex.EncodeToString(sum[:])
	return certs, nil
}
