package lint

// IndexDiscipline restricts how the batch engine's dense parallel arrays
// may be indexed. The batch layout splits addressing into two spaces: *slot
// ids* (stable VC/injection-slot numbers, shared with the scalar engine)
// index the aIdx translation table and the occ bitmap, while *positions*
// (compact, swap-remove-maintained offsets) index the hot-state and message
// arrays. Mixing the spaces compiles fine and often even runs fine at small
// scale — until a swap-remove reorders positions and a slot id silently
// reads another worm's state. The pass therefore requires every index into
// a checked array to be derived from a blessed producer:
//
//   - positions: aIdx[slot], range/loop offsets over the active list or a
//     position array, len(active)-style bounds arithmetic, or a parameter
//     named in PosParams;
//   - slot ids: elements of the active/free/shortlist slices, configured
//     slot-carrying struct fields, blessed producers (newInjSlotR), the
//     ch*numVCs+vc packing arithmetic, or a parameter named in SlotParams.
//
// Call sites are held to the same contract: an argument for a parameter
// named in SlotParams/PosParams must itself be blessed. Intentional escapes
// carry //lint:allow indexdiscipline with a reason.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Blessing flags.
const (
	blessSlot = 1 << iota
	blessPos
)

// IndexDiscipline is the pass. Construct with NewIndexDiscipline, or
// populate the fields for fixture models.
type IndexDiscipline struct {
	TargetPkg string
	Root      string // FindFunc spec; the audit covers its reachable graph
	// PosArrays are indexed by positions; SlotArrays by slot ids.
	PosArrays  map[string]bool
	SlotArrays map[string]bool
	// SlotSlices hold slot ids as elements (and, when also in PosArrays,
	// are position-indexed: the active list is both).
	SlotSlices map[string]bool
	// SlotParams/PosParams bless parameters by name, and bind call-site
	// arguments to the same discipline.
	SlotParams map[string]bool
	PosParams  map[string]bool
	// SlotFields are "Struct.field" selectors carrying slot ids.
	SlotFields map[string]bool
	// SlotProducers are target-package functions returning fresh slot ids.
	SlotProducers map[string]bool
	// SlotFactor names the field whose multiply-add packing produces slot
	// ids (ch*numVCs + vc).
	SlotFactor string
}

// NewIndexDiscipline returns the pass configured for wormsim's batch
// engine.
func NewIndexDiscipline() *IndexDiscipline {
	return &IndexDiscipline{
		TargetPkg:  "wormsim/internal/network",
		Root:       "(*BatchNetwork).Step",
		PosArrays:  map[string]bool{"hotA": true, "msgA": true, "active": true},
		SlotArrays: map[string]bool{"aIdx": true, "occ": true},
		SlotSlices: map[string]bool{
			"active": true, "headerIDs": true, "injFree": true,
			"moves": true, "cand": true,
		},
		SlotParams:    map[string]bool{"id": true, "t": true},
		PosParams:     map[string]bool{"pos": true},
		SlotFields:    map[string]bool{"wormRef.vc": true},
		SlotProducers: map[string]bool{"newInjSlotR": true},
		SlotFactor:    "numVCs",
	}
}

// Name returns "indexdiscipline".
func (*IndexDiscipline) Name() string { return "indexdiscipline" }

// Doc describes the pass.
func (*IndexDiscipline) Doc() string {
	return "batch dense arrays may only be indexed by blessed slot-id/position producers"
}

// RunProgram audits every function reachable from the root.
func (d *IndexDiscipline) RunProgram(prog *Program) []Finding {
	pkg := prog.Package(d.TargetPkg)
	if pkg == nil {
		return nil
	}
	root := prog.FindFunc(d.TargetPkg, d.Root)
	if root == nil {
		return []Finding{{
			Pos:  pkg.Fset.Position(pkg.Files[0].Pos()),
			Pass: d.Name(),
			Msg:  fmt.Sprintf("index-discipline root %s not found in %s; update the pass configuration", d.Root, d.TargetPkg),
		}}
	}
	reach := prog.Graph().ReachableFrom(root)
	var findings []Finding
	forEachReachableDecl(prog, reach, func(q *Package, fd *ast.FuncDecl, fn *types.Func) {
		if q.Path != d.TargetPkg {
			return
		}
		findings = append(findings, d.checkFunc(q, fd, prog)...)
	})
	return findings
}

// idxScope is the per-function blessing state.
type idxScope struct {
	pass    *IndexDiscipline
	pkg     *Package
	aliases map[types.Object][]string
	bless   map[types.Object]int
}

// checkFunc blesses fd's identifiers, then audits every index expression
// and intra-package call-site argument.
func (d *IndexDiscipline) checkFunc(pkg *Package, fd *ast.FuncDecl, prog *Program) []Finding {
	s := &idxScope{
		pass:    d,
		pkg:     pkg,
		aliases: collectFieldAliases(pkg, fd),
		bless:   make(map[types.Object]int),
	}
	s.blessIdents(fd)

	var findings []Finding
	flag := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, Finding{
			Pos:  pkg.Fset.Position(pos),
			Pass: d.Name(),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.IndexExpr:
			base := s.arrayName(t.X)
			switch {
			case d.PosArrays[base]:
				if s.exprBless(t.Index)&blessPos == 0 {
					flag(t.Index.Pos(), "position array %s indexed by an unblessed expression; positions come from aIdx[slot] or active-list offsets", base)
				}
			case d.SlotArrays[base]:
				idx := t.Index
				// The occ bitmap is word-addressed: slot >> k.
				if sh, ok := unparen(idx).(*ast.BinaryExpr); ok && sh.Op == token.SHR {
					if _, isLit := unparen(sh.Y).(*ast.BasicLit); isLit {
						idx = sh.X
					}
				}
				if s.exprBless(idx)&blessSlot == 0 {
					flag(t.Index.Pos(), "slot-id array %s indexed by an unblessed expression; slot ids come from the active list, blessed producers or ch*%s+vc packing", base, d.SlotFactor)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pkg, t)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != d.TargetPkg {
				return true
			}
			decl := prog.decls[fn]
			if decl == nil {
				return true
			}
			for i, name := range paramNames(decl) {
				if i >= len(t.Args) {
					break
				}
				switch {
				case d.SlotParams[name]:
					if s.exprBless(t.Args[i])&blessSlot == 0 {
						flag(t.Args[i].Pos(), "argument for slot-id parameter %q of %s is not a blessed slot id", name, fn.Name())
					}
				case d.PosParams[name]:
					if s.exprBless(t.Args[i])&blessPos == 0 {
						flag(t.Args[i].Pos(), "argument for position parameter %q of %s is not a blessed position", name, fn.Name())
					}
				}
			}
		}
		return true
	})
	return findings
}

// paramNames flattens a declaration's parameter names in order.
func paramNames(decl *ast.FuncDecl) []string {
	var names []string
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			names = append(names, "_")
			continue
		}
		for _, id := range field.Names {
			names = append(names, id.Name)
		}
	}
	return names
}

// blessIdents computes the blessing fixpoint: parameters by name, range
// bindings over checked containers, bounded loop counters, and locals whose
// every assignment is itself blessed. Three rounds resolve chains like
// moved := active[last]; aIdx[moved] = i.
func (s *idxScope) blessIdents(fd *ast.FuncDecl) {
	// Sources per object: fixed flags and assignment expressions. An object
	// blessed from several sources keeps only what all of them guarantee.
	fixed := make(map[types.Object]int)
	exprs := make(map[types.Object][]ast.Expr)
	counterInit := make(map[types.Object]bool)

	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, id := range field.Names {
				obj := s.pkg.Info.Defs[id]
				if obj == nil {
					continue
				}
				if s.pass.SlotParams[id.Name] {
					fixed[obj] |= blessSlot
				}
				if s.pass.PosParams[id.Name] {
					fixed[obj] |= blessPos
				}
			}
		}
	}

	objOf := func(e ast.Expr) types.Object {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := s.pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return s.pkg.Info.Uses[id]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.RangeStmt:
			base := s.arrayName(t.X)
			if s.pass.SlotSlices[base] {
				if obj := objOf(t.Value); obj != nil {
					fixed[obj] |= blessSlot
				}
			}
			if s.pass.PosArrays[base] {
				if obj := objOf(t.Key); obj != nil {
					fixed[obj] |= blessPos
				}
			}
		case *ast.ForStmt:
			// for i := 0; i < <position bound>; i++ blesses i as a position.
			init, ok := t.Init.(*ast.AssignStmt)
			if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
				return true
			}
			if _, isLit := unparen(init.Rhs[0]).(*ast.BasicLit); !isLit {
				return true
			}
			obj := objOf(init.Lhs[0])
			if obj == nil {
				return true
			}
			cond, ok := t.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.LSS || objOf(cond.X) != obj {
				return true
			}
			counterInit[obj] = true
			exprs[obj] = append(exprs[obj], cond.Y) // blessed iff the bound is a position bound
		case *ast.AssignStmt:
			if len(t.Lhs) != len(t.Rhs) {
				return true
			}
			for i, lhs := range t.Lhs {
				obj := objOf(lhs)
				if obj == nil {
					continue
				}
				if as, ok := t.Lhs[i].(*ast.Ident); ok && counterInit[obj] && as.Name != "_" {
					if _, isLit := unparen(t.Rhs[i]).(*ast.BasicLit); isLit {
						continue // the counter's own literal init
					}
				}
				exprs[obj] = append(exprs[obj], t.Rhs[i])
			}
		}
		return true
	})

	objs := make(map[types.Object]bool, len(fixed)+len(exprs))
	for obj := range fixed {
		objs[obj] = true
	}
	for obj := range exprs {
		objs[obj] = true
	}
	for round := 0; round < 3; round++ {
		next := make(map[types.Object]int, len(objs))
		for obj := range objs {
			got := fixed[obj]
			if list := exprs[obj]; len(list) > 0 {
				// Every assignment must be blessed: a reassignment from an
				// unblessed expression clears the object's standing, even
				// for parameters blessed by name.
				all := blessSlot | blessPos
				for _, e := range list {
					all &= s.exprBlessWith(e, s.bless)
				}
				if got != 0 {
					got &= all
				} else {
					got = all
				}
			}
			next[obj] = got
		}
		s.bless = next
	}
}

// exprBless evaluates an expression's blessing with the final fixpoint.
func (s *idxScope) exprBless(e ast.Expr) int { return s.exprBlessWith(e, s.bless) }

// exprBlessWith evaluates the blessing of one expression.
func (s *idxScope) exprBlessWith(e ast.Expr, bless map[types.Object]int) int {
	e = unparen(e)
	switch t := e.(type) {
	case *ast.Ident:
		obj := s.pkg.Info.Uses[t]
		if obj == nil {
			obj = s.pkg.Info.Defs[t]
		}
		return bless[obj]
	case *ast.IndexExpr:
		base := s.arrayName(t.X)
		switch {
		case s.pass.SlotArrays[base] && base != "occ":
			return blessPos // aIdx[slot] is the position translation
		case s.pass.SlotSlices[base]:
			return blessSlot
		}
		return 0
	case *ast.CallExpr:
		// Conversions are transparent; blessed producers yield slot ids;
		// len(<position array>) is a position bound.
		if tv, ok := s.pkg.Info.Types[t.Fun]; ok && tv.IsType() && len(t.Args) == 1 {
			return s.exprBlessWith(t.Args[0], bless)
		}
		if fn := calleeFunc(s.pkg, t); fn != nil && s.pass.SlotProducers[fn.Name()] {
			return blessSlot
		}
		if id, ok := unparen(t.Fun).(*ast.Ident); ok && id.Name == "len" && len(t.Args) == 1 {
			if s.pass.PosArrays[s.arrayName(t.Args[0])] {
				return blessPos
			}
		}
		return 0
	case *ast.SelectorExpr:
		v, ok := s.pkg.Info.Uses[t.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return 0
		}
		if sel := s.pkg.Info.Selections[t]; sel != nil {
			if named := namedOf(sel.Recv()); named != nil &&
				s.pass.SlotFields[named.Obj().Name()+"."+t.Sel.Name] {
				return blessSlot
			}
		}
		return 0
	case *ast.BinaryExpr:
		switch t.Op {
		case token.ADD:
			// ch*numVCs + vc packs a slot id.
			if s.mulBySlotFactor(t.X) || s.mulBySlotFactor(t.Y) {
				return blessSlot
			}
			// position ± literal stays a position (len(active)-1).
			if _, isLit := unparen(t.Y).(*ast.BasicLit); isLit {
				return s.exprBlessWith(t.X, bless) & blessPos
			}
		case token.SUB:
			if _, isLit := unparen(t.Y).(*ast.BasicLit); isLit {
				return s.exprBlessWith(t.X, bless) & blessPos
			}
		}
		return 0
	}
	return 0
}

// mulBySlotFactor reports whether e multiplies by the slot-packing factor
// (numVCs), possibly through conversions.
func (s *idxScope) mulBySlotFactor(e ast.Expr) bool {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := s.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return s.mulBySlotFactor(call.Args[0])
		}
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op != token.MUL {
		return false
	}
	mentions := func(x ast.Expr) bool {
		found := false
		ast.Inspect(x, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.SelectorExpr:
				if t.Sel.Name == s.pass.SlotFactor {
					if v, ok := s.pkg.Info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
						found = true
					}
				}
			case *ast.Ident:
				// The engines keep a converted local copy of the factor
				// (numVCs := int32(b.numVCs)); the name carries the role.
				if t.Name == s.pass.SlotFactor {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return mentions(bin.X) || mentions(bin.Y)
}

// arrayName resolves the base of an index expression to the underlying
// field name, through local aliases (hotA := rep.hotA). A plain local or
// parameter with no field chain is named by its identifier — the batch
// engine passes its dense slices around by role-carrying names (moves,
// cand).
func (s *idxScope) arrayName(e ast.Expr) string {
	chain, _ := fieldChain(s.pkg, s.aliases, e)
	if len(chain) > 0 {
		return chain[len(chain)-1]
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
