package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPurityFixture: each injected impurity class fires at its WANT-marked
// line, the annotated counter is suppressed, and orphan's unreachable
// clock read stays silent.
func TestPurityFixture(t *testing.T) {
	pkgs := loadFixtures(t, "puritybad", "puritybad/dep")
	checkFixtureMulti(t, pkgs, &Purity{Entries: []FuncRef{{Pkg: pkgs[0].Path, Func: "Run"}}})
}

// TestPurityWitnessChain: the impurity hidden in dep must explain how the
// entry point reaches it.
func TestPurityWitnessChain(t *testing.T) {
	pkgs := loadFixtures(t, "puritybad", "puritybad/dep")
	fs := Run(pkgs, []Pass{&Purity{Entries: []FuncRef{{Pkg: pkgs[0].Path, Func: "Run"}}}})
	found := false
	for _, f := range fs {
		if strings.Contains(f.Msg, "reachable via puritybad.Run → Leak") {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding carries the Run → Leak witness chain; findings: %v", fs)
	}
}

// TestPurityMissingEntry: a misconfigured entry point is a finding for the
// pass and a hard error for certification.
func TestPurityMissingEntry(t *testing.T) {
	pkgs := loadFixtures(t, "puritybad", "puritybad/dep")
	pu := &Purity{Entries: []FuncRef{{Pkg: pkgs[0].Path, Func: "Missing"}}}
	fs := Run(pkgs, []Pass{pu})
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "not found") {
		t.Fatalf("missing entry point findings = %v, want one naming the gap", fs)
	}
	if _, err := CertifyPurity(NewProgram(pkgs), pu, ""); err == nil {
		t.Error("CertifyPurity accepted a missing entry point")
	}
}

// TestCertifyPurityFixture pins the certificate structure on the fixture:
// the entry is impure (unannotated violations), the annotated counter is
// an exemption carrying its reason, the frontier tiers every reachable
// function, and the unreachable orphan appears nowhere.
func TestCertifyPurityFixture(t *testing.T) {
	pkgs := loadFixtures(t, "puritybad", "puritybad/dep")
	prog := NewProgram(pkgs)
	pu := &Purity{Entries: []FuncRef{{Pkg: pkgs[0].Path, Func: "Run"}}}
	certs, err := CertifyPurity(prog, pu, "")
	if err != nil {
		t.Fatalf("CertifyPurity: %v", err)
	}
	if certs.Schema != PuritySchema {
		t.Errorf("schema = %q, want %q", certs.Schema, PuritySchema)
	}
	if len(certs.Entries) != 1 {
		t.Fatalf("got %d certificates, want 1", len(certs.Entries))
	}
	cert := certs.Entries[0]
	if cert.Entry != pkgs[0].Path+".Run" {
		t.Errorf("entry = %q, want %q", cert.Entry, pkgs[0].Path+".Run")
	}
	if cert.Pure {
		t.Error("certificate claims Pure despite unannotated violations")
	}
	// Run, readOnly, spin, dep.Leak — and never orphan or anything else.
	if cert.ReachableFunctions != 4 {
		t.Errorf("reachable_functions = %d, want 4", cert.ReachableFunctions)
	}

	if len(cert.Exemptions) != 1 {
		t.Fatalf("exemptions = %v, want exactly the annotated counter", cert.Exemptions)
	}
	ex := cert.Exemptions[0]
	if ex.Source != "atomic-write" {
		t.Errorf("exemption source = %q, want atomic-write", ex.Source)
	}
	if !strings.Contains(ex.Reason, "observe-only counter") {
		t.Errorf("exemption reason %q does not carry the annotation's reason", ex.Reason)
	}
	if ex.Witness != "Run" {
		t.Errorf("exemption witness = %q, want Run", ex.Witness)
	}

	if len(cert.Violations) == 0 {
		t.Fatal("fixture produced no violations")
	}
	sources := make(map[string]bool)
	for _, v := range cert.Violations {
		sources[v.Source] = true
		if v.Reason != "" {
			t.Errorf("violation %v carries a reason; reasons belong to exemptions", v)
		}
	}
	for _, want := range []string{
		"global-write", "wall-clock", "rand", "io", "machine-state",
		"map-order", "chan", "select", "goroutine",
	} {
		if !sources[want] {
			t.Errorf("no violation with source %q", want)
		}
	}

	frontier := map[string][]string{
		"pure":      cert.Frontier.Pure,
		"read_only": cert.Frontier.ReadOnly,
		"impure":    cert.Frontier.Impure,
	}
	for tier, wantFn := range map[string]string{
		"pure":      pkgs[0].Path + ".spin",
		"read_only": pkgs[0].Path + ".readOnly",
		"impure":    pkgs[1].Path + ".Leak",
	} {
		found := false
		for _, name := range frontier[tier] {
			if name == wantFn {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not in the %s frontier tier: %v", wantFn, tier, frontier[tier])
		}
	}
	for tier, names := range frontier {
		for _, name := range names {
			if strings.HasSuffix(name, ".orphan") {
				t.Errorf("unreachable orphan leaked into the %s tier", tier)
			}
		}
	}

	if !strings.HasPrefix(certs.Signature, "sha256:") {
		t.Errorf("signature = %q, want a sha256: prefix", certs.Signature)
	}
	again, err := CertifyPurity(NewProgram(loadFixtures(t, "puritybad", "puritybad/dep")), pu, "")
	if err != nil {
		t.Fatalf("CertifyPurity (rerun): %v", err)
	}
	if again.Signature != certs.Signature {
		t.Errorf("certification is not deterministic: %s vs %s", again.Signature, certs.Signature)
	}
}

// TestPurityCertificatesGolden is the drift gate CI leans on: certifying
// the shipped module must reproduce the pinned certificate set
// byte-for-byte, and every entry point must be pure. Regenerate with
// WORMLINT_UPDATE_GOLDEN=1 after an intentional change.
func TestPurityCertificatesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModRoot + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	certs, err := CertifyPurity(NewProgram(pkgs), NewPurity(), l.ModRoot)
	if err != nil {
		t.Fatalf("CertifyPurity: %v", err)
	}
	for _, cert := range certs.Entries {
		if !cert.Pure {
			t.Errorf("%s is not pure: %v", cert.Entry, cert.Violations)
		}
		if len(cert.Exemptions) == 0 {
			t.Errorf("%s has no exemptions; the store counters and worker fan-out should be on its graph", cert.Entry)
		}
	}
	data, err := json.MarshalIndent(certs, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	goldenPath := filepath.Join("testdata", "purity_certificates.golden.json")
	golden, err := os.ReadFile(goldenPath)
	if err != nil && os.Getenv("WORMLINT_UPDATE_GOLDEN") == "" {
		t.Fatalf("read golden (regenerate with WORMLINT_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(data, golden) {
		if os.Getenv("WORMLINT_UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		t.Errorf("purity certificates drifted from the golden; if intentional, regenerate with WORMLINT_UPDATE_GOLDEN=1\n--- got ---\n%s", data)
	}
}
