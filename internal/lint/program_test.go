package lint

import (
	"testing"
)

// TestProgramSharedAcrossPasses is the load-once contract behind cmd/wormlint:
// one Program serves every pass and certification, so the call graph is built
// exactly once and the declaration index is computed exactly once no matter
// how many whole-program passes consume them.
func TestProgramSharedAcrossPasses(t *testing.T) {
	p := loadFixture(t, "paritybad")
	prog := NewProgram([]*Package{p})

	parity := parityFixturePass(p)
	// Two whole-program passes plus two direct certifications, all against
	// the same Program.
	RunOn(prog, []Pass{parity})
	RunOn(prog, []Pass{parity})
	if _, err := CertifyParity(prog, parity, ""); err != nil {
		t.Fatalf("CertifyParity: %v", err)
	}
	if _, err := CertifyParity(prog, parity, ""); err != nil {
		t.Fatalf("CertifyParity (rerun): %v", err)
	}

	if prog.graphBuilds > 1 {
		t.Errorf("call graph built %d times on one Program, want at most 1", prog.graphBuilds)
	}
	first := prog.funcDecls()
	second := prog.funcDecls()
	if len(first) == 0 {
		t.Fatal("funcDecls returned no declarations for the paritybad fixture")
	}
	if &first[0] != &second[0] {
		t.Error("funcDecls rebuilt the declaration list instead of returning the cache")
	}
}

// TestProgramFreshGraphPerProgram: separate Programs do not share caches, so
// stale graphs can never leak across -fix reloads.
func TestProgramFreshGraphPerProgram(t *testing.T) {
	p := loadFixture(t, "paritybad")
	a, b := NewProgram([]*Package{p}), NewProgram([]*Package{p})
	if a.Graph() == b.Graph() {
		t.Error("two Programs returned the same *CallGraph; caches must be per-Program")
	}
	if a.graphBuilds != 1 || b.graphBuilds != 1 {
		t.Errorf("graphBuilds = %d/%d, want 1/1", a.graphBuilds, b.graphBuilds)
	}
}

// BenchmarkSharedProgram measures the cmd/wormlint architecture: one Program
// amortizes the call graph and declaration index across every pass.
func BenchmarkSharedProgram(b *testing.B) {
	pkgs, passes := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := NewProgram(pkgs)
		for _, pass := range passes {
			RunOn(prog, []Pass{pass})
		}
	}
}

// BenchmarkPerPassProgram measures the pre-sharing architecture for
// comparison: every pass pays for its own Program (and thus its own call
// graph build).
func BenchmarkPerPassProgram(b *testing.B) {
	pkgs, passes := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pass := range passes {
			Run(pkgs, []Pass{pass})
		}
	}
}

// benchFixture loads the real module once (outside the timed region) so the
// benchmarks compare pure analysis cost: with a shared Program the
// whole-program passes build one call graph between them; per-pass Programs
// rebuild it for every graph-hungry pass.
func benchFixture(b *testing.B) ([]*Package, []Pass) {
	b.Helper()
	l, err := NewLoader(".")
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModRoot + "/...")
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	return pkgs, DefaultPasses()
}
