package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// unusedAllowPasses is the suite the unusedallow fixture is judged against:
// a pass with live suppressions (errfmt), one that never fires there
// (mutexcopy), and the after-pass itself.
func unusedAllowPasses() []Pass {
	return []Pass{ErrFmt{}, MutexCopy{}, NewUnusedAllow(PassNames())}
}

// TestUnusedAllowFixture: directives that suppress nothing are findings at
// their WANT-marked lines; the control directive with a live suppression is
// not.
func TestUnusedAllowFixture(t *testing.T) {
	pkgs := loadFixtures(t, "unusedallowbad")
	want := wantFileLines(t, pkgs, "unusedallow")
	got := make(map[string]bool)
	for _, f := range Run(pkgs, unusedAllowPasses()) {
		if f.Pass != "unusedallow" {
			t.Errorf("unexpected %s finding: %s", f.Pass, f)
			continue
		}
		got[filepath.Base(f.Pos.Filename)+":"+itoa(f.Pos.Line)] = true
	}
	for key := range want {
		if !got[key] {
			t.Errorf("no unusedallow finding at %s, want one", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected unusedallow finding at %s", key)
		}
	}
}

// TestUnusedAllowSkipsNotRun: a directive for a pass that did not run this
// invocation cannot be judged stale — only the mutexcopy half of the
// multi-pass directive is provably dead when errfmt is deselected.
func TestUnusedAllowSkipsNotRun(t *testing.T) {
	pkgs := loadFixtures(t, "unusedallowbad")
	fs := Run(pkgs, []Pass{MutexCopy{}, NewUnusedAllow(PassNames())})
	if len(fs) != 1 {
		t.Fatalf("got %d findings with errfmt deselected, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "//lint:allow mutexcopy") {
		t.Errorf("finding does not single out the mutexcopy half: %s", fs[0])
	}
}

// TestUnusedAllowFixGolden: -fix must delete the whole-line directive,
// rewrite the multi-pass one down to its live half (keeping the reason),
// and leave the control untouched — byte-for-byte against the
// unusedallowfixed golden, which must itself come back clean (idempotency).
func TestUnusedAllowFixGolden(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "unusedallowbad"))
	if err != nil {
		t.Fatalf("LoadDir(unusedallowbad): %v", err)
	}
	findings := Run([]*Package{p}, unusedAllowPasses())
	var fixable int
	for _, f := range findings {
		if f.Pass == "unusedallow" && f.Fix != nil {
			fixable++
		}
	}
	if fixable != 2 {
		t.Fatalf("got %d fixable unusedallow findings, want 2: %v", fixable, findings)
	}
	patched, err := ApplyFixes(l.Fset, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(patched) != 1 {
		t.Fatalf("patched %d files, want 1", len(patched))
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "src", "unusedallowfixed", "unusedallowbad.go"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	for name, got := range patched {
		if !bytes.Equal(got, golden) {
			t.Errorf("ApplyFixes(%s) does not match the unusedallowfixed golden:\n--- got ---\n%s\n--- want ---\n%s",
				name, got, golden)
		}
	}

	fixed := loadFixtures(t, "unusedallowfixed")
	if fs := Run(fixed, unusedAllowPasses()); len(fs) != 0 {
		t.Errorf("unusedallowfixed still has findings: %v", fs)
	}
}
