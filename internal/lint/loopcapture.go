package lint

import (
	"go/ast"
	"go/types"
)

// LoopCapture flags go/defer closures inside loops that capture mutable
// loop state by reference:
//
//   - a variable declared outside the loop but reassigned inside it — the
//     goroutine or deferred call observes whichever iteration wrote last
//     (a data race for goroutines, a stale value for defers);
//   - for defer only, the loop's own iteration variable — deferred calls
//     run at function exit, not per iteration, which is almost never the
//     intent (and batches resource release until the very end).
//
// Go 1.22's per-iteration loop variables make capturing the iteration
// variable in a goroutine safe, so that case is deliberately not flagged.
type LoopCapture struct{}

// Name returns "loopcapture".
func (LoopCapture) Name() string { return "loopcapture" }

// Doc describes the pass.
func (LoopCapture) Doc() string {
	return "forbid go/defer closures capturing loop-mutated variables"
}

// Run reports hazardous captures.
func (LoopCapture) Run(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			var call *ast.CallExpr
			var verb string
			switch s := n.(type) {
			case *ast.GoStmt:
				call, verb = s.Call, "go"
			case *ast.DeferStmt:
				call, verb = s.Call, "defer"
			default:
				return
			}
			lit, ok := call.Fun.(*ast.FuncLit)
			if !ok {
				return
			}
			loop := innermostLoop(stack)
			if loop == nil {
				return
			}
			reported := map[types.Object]bool{}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := p.Info.Uses[id].(*types.Var)
				if !ok || reported[obj] || obj.IsField() {
					return true
				}
				declInsideLit := obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
				if declInsideLit {
					return true
				}
				declInLoop := obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End()
				switch {
				case !declInLoop && assignedIn(p, loop, obj, lit):
					reported[obj] = true
					f := p.finding(LoopCapture{}.Name(), id,
						"%s closure captures %q, which the enclosing loop reassigns; pass it as an argument", verb, obj.Name())
					f.Fix = &Fix{
						Message: "rebind " + obj.Name() + " before the " + verb + " statement",
						Edits: []TextEdit{{
							Pos:     n.Pos(),
							End:     n.Pos(),
							NewText: obj.Name() + " := " + obj.Name() + "\n" + indentAt(p.Fset, n.Pos()),
						}},
					}
					out = append(out, f)
				case verb == "defer" && isLoopVar(p, loop, obj):
					reported[obj] = true
					out = append(out, p.finding(LoopCapture{}.Name(), id,
						"deferred closure in a loop captures iteration variable %q; the call only runs at function exit", obj.Name()))
				}
				return true
			})
		})
	}
	return out
}

// innermostLoop returns the nearest enclosing for/range statement, or nil.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		}
	}
	return nil
}

// assignedIn reports whether obj is assigned (or ++/--'d) anywhere in loop
// outside the function literal lit.
func assignedIn(p *Package, loop ast.Node, obj types.Object, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if n == lit {
			return false
		}
		var lhs []ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			lhs = s.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{s.X}
		default:
			return true
		}
		for _, e := range lhs {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if p.Info.Uses[id] == obj || p.Info.Defs[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isLoopVar reports whether obj is an iteration variable of loop (a range
// key/value or a variable declared in a for-init).
func isLoopVar(p *Package, loop ast.Node, obj types.Object) bool {
	var decls []ast.Expr
	switch l := loop.(type) {
	case *ast.RangeStmt:
		decls = []ast.Expr{l.Key, l.Value}
	case *ast.ForStmt:
		if init, ok := l.Init.(*ast.AssignStmt); ok {
			decls = init.Lhs
		}
	}
	for _, e := range decls {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if p.Info.Defs[id] == obj {
			return true
		}
	}
	return false
}
