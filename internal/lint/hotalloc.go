package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc machine-enforces the engine's zero-alloc steady-state contract:
// inside the per-cycle call graph — every function in the program reachable
// from the engine's cycle entry point, across package boundaries and
// through conservatively devirtualized interface calls (routing algorithms,
// selection policies, workloads) — the pass forbids
//
//   - make(map[...]...), and
//   - map composite literals (both allocate, and maps additionally regrow
//     and rehash unpredictably; use a generation-counter scratch array or a
//     reusable slice keyed by dense indices), and
//   - function literals (a closure that captures variables allocates its
//     environment every evaluation; hoist it to a field or a method).
//
// Calls through plain function values (telemetry hooks, OnDeliver) still
// have no static callee and are the graph's boundary. Setup-only
// allocations that genuinely belong on the hot path's source (a scratch
// table rebuilt only on topology change, a terminal error report) are
// annotated in place with //lint:allow hotalloc and a reason.
type HotAlloc struct {
	// TargetPkg is the import path holding the entry points.
	TargetPkg string
	// Root names a cycle entry point, "Func" or "(*Recv).Func".
	Root string
	// Roots names additional entry points in TargetPkg; all roots feed one
	// reachability query, so a function reachable from any of them is on
	// the hot path.
	Roots []string
}

// NewHotAlloc guards both engines: everything network.(*Network).Step or
// network.(*BatchNetwork).Step reaches runs once per simulated cycle (the
// batch root covers the replica-minor lockstep sweep, whose zero-alloc
// steady state TestBatchSteadyStateZeroAlloc pins dynamically).
func NewHotAlloc() *HotAlloc {
	return &HotAlloc{
		TargetPkg: "wormsim/internal/network",
		Root:      "(*Network).Step",
		Roots:     []string{"(*BatchNetwork).Step"},
	}
}

// Name returns "hotalloc".
func (*HotAlloc) Name() string { return "hotalloc" }

// Doc describes the pass.
func (*HotAlloc) Doc() string {
	return "forbid map allocation and closures in the engine's whole-program per-cycle call graph"
}

// RunProgram reports hot-path allocation constructs in every function
// reachable from the root, wherever it lives.
func (h *HotAlloc) RunProgram(prog *Program) []Finding {
	target := prog.Package(h.TargetPkg)
	if target == nil {
		// The entry-point package is not part of this load (e.g. wormlint
		// pointed at a single unrelated package); nothing to check.
		return nil
	}
	names := make([]string, 0, 1+len(h.Roots))
	if h.Root != "" {
		names = append(names, h.Root)
	}
	names = append(names, h.Roots...)
	var roots []*types.Func
	for _, name := range names {
		root := prog.FindFunc(h.TargetPkg, name)
		if root == nil {
			// A renamed entry point must not silently disarm the gate.
			return []Finding{target.finding(h.Name(), target.Files[0],
				"hot-path root %s not found in %s; update the pass configuration", name, h.TargetPkg)}
		}
		roots = append(roots, root)
	}

	reach := prog.Graph().ReachableFrom(roots...)
	var out []Finding
	forEachReachableDecl(prog, reach, func(p *Package, fd *ast.FuncDecl, _ *types.Func) {
		out = append(out, h.checkBody(p, fd, reach)...)
	})
	return out
}

// checkBody flags the allocation constructs inside one reachable function.
func (h *HotAlloc) checkBody(p *Package, fd *ast.FuncDecl, reach *Reach) []Finding {
	fn := p.Info.Defs[fd.Name].(*types.Func)
	chain := reach.Chain(fn, p)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && isMapType(p, n.Args[0]) {
					out = append(out, p.finding(h.Name(), n,
						"make(map) on the per-cycle path %s; use a generation-counter scratch or //lint:allow hotalloc with a reason", chain))
				}
			}
		case *ast.CompositeLit:
			if isMapType(p, n) {
				out = append(out, p.finding(h.Name(), n,
					"map literal on the per-cycle path %s; use a generation-counter scratch or //lint:allow hotalloc with a reason", chain))
			}
		case *ast.FuncLit:
			out = append(out, p.finding(h.Name(), n,
				"closure on the per-cycle path %s allocates its environment; hoist it to a field or method, or //lint:allow hotalloc with a reason", chain))
		}
		return true
	})
	return out
}
