package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc machine-enforces the engine's zero-alloc steady-state contract:
// inside the per-cycle call graph — every function in the target package
// reachable from the engine's cycle entry point — the pass forbids
//
//   - make(map[...]...), and
//   - map composite literals (both allocate, and maps additionally regrow
//     and rehash unpredictably; use a generation-counter scratch array or a
//     reusable slice keyed by dense indices), and
//   - function literals (a closure that captures variables allocates its
//     environment every evaluation; hoist it to a field or a method).
//
// The graph is intra-package and static: calls through interfaces or
// function-valued fields (routing algorithms, telemetry hooks) are the
// package boundary and are not followed. Setup-only allocations that
// genuinely belong on the hot path's source (a scratch table rebuilt only
// on topology change, a terminal error report) are annotated in place with
// //lint:allow hotalloc and a reason.
type HotAlloc struct {
	// Target is the import path the pass applies to.
	Target string
	// Root names the cycle entry point, "Func" or "(*Recv).Func".
	Root string
}

// NewHotAlloc guards the engine: everything network.(*Network).Step reaches
// runs once per simulated cycle.
func NewHotAlloc() *HotAlloc {
	return &HotAlloc{Target: "wormsim/internal/network", Root: "(*Network).Step"}
}

// Name returns "hotalloc".
func (*HotAlloc) Name() string { return "hotalloc" }

// Doc describes the pass.
func (*HotAlloc) Doc() string {
	return "forbid map allocation and closures in the engine's per-cycle call graph"
}

// Run reports hot-path allocation constructs in the target package.
func (h *HotAlloc) Run(p *Package) []Finding {
	if p.Path != h.Target {
		return nil
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	var root *types.Func
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fd
			if funcDeclName(fd) == h.Root {
				root = obj
			}
		}
	}
	if root == nil {
		// A renamed entry point must not silently disarm the gate.
		return []Finding{p.finding(h.Name(), p.Files[0],
			"hot-path root %s not found in %s; update the pass configuration", h.Root, p.Path)}
	}

	// Breadth-first closure over intra-package static calls. Bodies of
	// nested function literals count: they run when the enclosing hot
	// function runs them.
	reach := map[*types.Func]bool{root: true}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fd := decls[queue[0]]
		queue = queue[1:]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p, call)
			if callee == nil || callee.Pkg() != p.Types || reach[callee] {
				return true
			}
			reach[callee] = true
			queue = append(queue, callee)
			return true
		})
	}

	var out []Finding
	for fn, fd := range decls { //lint:allow simdeterminism (findings sorted by the framework)
		if !reach[fn] || fd.Body == nil {
			continue
		}
		name := funcDeclName(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && isMapType(p, n.Args[0]) {
						out = append(out, p.finding(h.Name(), n,
							"make(map) in %s, on the per-cycle path from %s; use a generation-counter scratch or //lint:allow hotalloc with a reason", name, h.Root))
					}
				}
			case *ast.CompositeLit:
				if isMapType(p, n) {
					out = append(out, p.finding(h.Name(), n,
						"map literal in %s, on the per-cycle path from %s; use a generation-counter scratch or //lint:allow hotalloc with a reason", name, h.Root))
				}
			case *ast.FuncLit:
				out = append(out, p.finding(h.Name(), n,
					"closure in %s, on the per-cycle path from %s, allocates its environment; hoist it to a field or method, or //lint:allow hotalloc with a reason", name, h.Root))
			}
			return true
		})
	}
	return out
}

// funcDeclName renders a declaration as the Root spec syntax: "Func" for
// plain functions, "(Recv).Func" or "(*Recv).Func" for methods.
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		t, star = s.X, "*"
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return fd.Name.Name
	}
	return "(" + star + id.Name + ")." + fd.Name.Name
}

// calleeFunc resolves a call expression to the statically named function or
// method, or nil for builtins, conversions and calls through values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isMapType reports whether the expression's type (or the type it names)
// is a map.
func isMapType(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
