package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// TextEdit replaces the source bytes in [Pos, End) with NewText. Pos == End
// is a pure insertion.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Fix is a suggested resolution for a finding: a human-readable description
// and the edits that implement it. Fixes are only attached when the rewrite
// is mechanical and behavior-preserving (errfmt's %v→%w on an error operand,
// loopcapture's rebind, hookguard's nil-guard); everything else stays a
// diagnostic for a human.
type Fix struct {
	Message string
	Edits   []TextEdit
}

// fileEdit is a Fix edit resolved to byte offsets within one file.
type fileEdit struct {
	start, end int
	text       string
}

// indentAt returns the leading indentation of the line a statement starts
// on, assuming gofmt's tab-only indentation (column is 1-based bytes).
func indentAt(fset *token.FileSet, pos token.Pos) string {
	col := fset.Position(pos).Column
	if col < 1 {
		return ""
	}
	b := make([]byte, col-1)
	for i := range b {
		b[i] = '\t'
	}
	return string(b)
}

// ApplyFixes gathers every fix attached to findings, resolves the edits to
// byte offsets, and returns the patched content per file. Edits are applied
// in offset order; when two fixes overlap (two findings proposing to rewrite
// the same bytes) the first in finding order wins and the rest of that
// overlapping fix is dropped whole, so -fix never produces garbled output —
// a second run picks up whatever remains.
func ApplyFixes(fset *token.FileSet, findings []Finding) (map[string][]byte, error) {
	perFile := make(map[string][]fileEdit)
	var names []string
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			pos := fset.Position(e.Pos)
			end := fset.Position(e.End)
			if pos.Filename == "" || end.Filename != pos.Filename || end.Offset < pos.Offset {
				return nil, fmt.Errorf("lint: invalid edit span for %q at %s", f.Fix.Message, pos)
			}
			if _, ok := perFile[pos.Filename]; !ok {
				names = append(names, pos.Filename)
			}
			perFile[pos.Filename] = append(perFile[pos.Filename], fileEdit{
				start: pos.Offset,
				end:   end.Offset,
				text:  e.NewText,
			})
		}
	}
	sort.Strings(names)

	out := make(map[string][]byte, len(perFile))
	for _, name := range names {
		edits := perFile[name]
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var buf []byte
		last := 0
		for _, e := range edits {
			if e.start < last || e.end > len(src) {
				continue // overlaps an already-applied edit; dropped
			}
			buf = append(buf, src[last:e.start]...)
			buf = append(buf, e.text...)
			last = e.end
		}
		buf = append(buf, src[last:]...)
		out[name] = buf
	}
	return out, nil
}
