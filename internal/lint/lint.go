// Package lint is wormsim's domain-specific static-analysis suite: a small
// analyzer framework (go/ast + go/types, stdlib only — see Loader) with
// passes that machine-enforce the invariants the paper's methodology and
// the simulator's design rest on.
//
// Passes come in two shapes. A PackagePass inspects one package at a time
// (syntactic and local-type rules). A ProgramPass sees the whole loaded
// module at once through a Program: a cross-package static call graph with
// conservative devirtualization of interface and method-value calls, plus a
// shared reaching-facts dataflow driver (see callgraph.go). The hot-path
// passes are program passes, so "no allocation reachable from Step" holds
// across package boundaries, not just inside internal/network.
//
// The passes:
//
//   - simdeterminism — the simulation core must be bit-reproducible from
//     its seeds: no math/rand, no wall clock, no iteration over maps —
//     enforced per target package and on everything reachable from the
//     engine and result-serving entry points, across packages.
//   - purity — the run entry points (core.Run, RunCached, Sweep,
//     SweepReplicated) must be pure functions of their Config: an effect
//     inference classifies every reachable function pure / read-only /
//     impure, and every impurity is either fixed or an annotated exemption.
//     CertifyPurity turns the result into machine-readable certificates
//     (cmd/wormlint -certify-purity) — the theorem the run store's
//     cache-hit contract rests on.
//   - hotalloc — the engine's per-cycle call graph must stay allocation
//     free: no make(map), map literals or closures reachable from Step,
//     through cross-package calls and devirtualized interface calls.
//   - hookguard — telemetry hook call sites must be nil-guarded so that
//     disabled telemetry stays a branch, never a panic.
//   - atomicdiscipline — a field touched through sync/atomic (or typed
//     atomic.Int64/atomic.Pointer/...) must never be accessed plainly.
//   - lockscope — no channel send/recv, function-value (hook) invocation,
//     or blocking call while a sync.Mutex is held; locks unlock on all
//     return paths.
//   - hookescape — values handed to engine hooks must be deep copies: no
//     argument may carry a reference into engine-owned state.
//   - engineparity — the scalar and batch engines must be semantically
//     twins: a dataflow footprint (config reads, canonical state writes,
//     RNG draws, hook emissions, pool traffic) is extracted for each
//     function pair of the two engines and diffed; any divergence must be
//     fixed or audited with //lint:parity. CertifyParity turns the result
//     into machine-readable certificates (cmd/wormlint -certify-parity).
//   - conservation — flit/credit ledgers must balance: every conserved
//     quantity (VC ownership counters, pool messages, congestion credits)
//     acquired on an engine Step graph must be released on the same graph,
//     and pool acquisitions must reach a release or a state sink on every
//     path.
//   - indexdiscipline — the batch engine's dense arrays may only be
//     indexed by blessed slot-id / position producers, so a slot id can
//     never be used as a position (or vice versa) without an explicit
//     audited conversion.
//   - mutexcopy — locks must not be copied through receivers or parameters.
//   - loopcapture — go/defer closures must not capture variables the
//     enclosing loop keeps reassigning.
//   - errfmt — error strings follow Go conventions and error operands are
//     wrapped with %w.
//   - lintdirective — //lint:allow directives must name registered passes
//     (stale suppressions rot).
//   - unusedallow — an //lint:allow directive that no longer suppresses
//     any finding is itself a finding (and -fix deletes it).
//
// A finding can be suppressed where the flagged use is intentional by
// annotating the line (or the line above it) with a directive:
//
//	//lint:allow <pass>[,<pass>...] [reason]
//
// Findings print as "file:line: [pass] message"; cmd/wormlint exits
// non-zero if any survive, which makes the suite a CI gate. Some findings
// carry a suggested fix (errfmt %v→%w on error operands, loopcapture
// rebinds, hookguard nil-guards) that cmd/wormlint -fix applies; -sarif
// emits SARIF 2.1.0 for code-scanning upload and -baseline adopts new
// passes incrementally.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the pass that produced it, the
// message, and optionally a suggested fix.
type Finding struct {
	Pos  token.Position
	Pass string
	Msg  string
	// Fix, when non-nil, is a textual edit that resolves the finding;
	// cmd/wormlint -fix applies it (see fix.go).
	Fix *Fix
}

// String renders the finding in the canonical "file:line: [pass] message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pass, f.Msg)
}

// Pass is the common surface of every analyzer: an identity for -passes
// selection, directives and SARIF rules.
type Pass interface {
	Name() string
	// Doc is a one-line description for -list and the SARIF rule table.
	Doc() string
}

// PackagePass is an analyzer that inspects one package at a time.
type PackagePass interface {
	Pass
	Run(p *Package) []Finding
}

// ProgramPass is an analyzer that needs the whole loaded module: the
// cross-package call graph, devirtualization, or directive indexes.
type ProgramPass interface {
	Pass
	RunProgram(prog *Program) []Finding
}

// AfterPass is an analyzer that runs after every other selected pass in the
// same Run call, so it can observe which //lint:allow directives the run
// actually exercised. unusedallow is the only implementation: a directive is
// only provably stale relative to the passes that ran, so ran carries the
// names of this run's passes.
type AfterPass interface {
	Pass
	RunAfter(prog *Program, ran map[string]bool) []Finding
}

// DefaultPasses returns the full suite in reporting order. The lintdirective
// pass always knows every registered name, even when the caller later runs a
// subset, so an //lint:allow for a deselected pass is never misreported.
func DefaultPasses() []Pass {
	passes := []Pass{
		NewSimDeterminism(),
		NewPurity(),
		NewHotAlloc(),
		NewHookGuard(),
		NewAtomicDiscipline(),
		NewLockScope(),
		NewHookEscape(),
		NewEngineParity(),
		NewConservation(),
		NewIndexDiscipline(),
		MutexCopy{},
		LoopCapture{},
		ErrFmt{},
	}
	names := make([]string, 0, len(passes)+2)
	for _, p := range passes {
		names = append(names, p.Name())
	}
	names = append(names, "lintdirective", "unusedallow")
	return append(passes, NewLintDirective(names), NewUnusedAllow(names))
}

// PassNames lists every registered pass name in reporting order.
func PassNames() []string {
	var names []string
	for _, p := range DefaultPasses() {
		names = append(names, p.Name())
	}
	return names
}

// SelectPasses resolves a comma-separated subset of pass names (as given to
// cmd/wormlint -passes) against the registry, preserving reporting order.
func SelectPasses(spec string) ([]Pass, error) {
	want := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	all := DefaultPasses()
	var out []Pass
	for _, p := range all {
		if want[p.Name()] {
			out = append(out, p)
			delete(want, p.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("lint: unknown pass(es) %s (run -list for the registry)", strings.Join(unknown, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: -passes selected nothing")
	}
	return out, nil
}

// Run applies every pass to the loaded packages, drops suppressed findings,
// and returns the rest sorted by file, line, pass and message. Program
// passes see all packages at once through a Program; package passes run per
// package.
func Run(pkgs []*Package, passes []Pass) []Finding {
	return RunOn(NewProgram(pkgs), passes)
}

// RunOn is Run against an already-built Program, so a caller that needs the
// Program for more than one job (findings plus certificate emission, as
// cmd/wormlint does) loads and type-checks the module exactly once.
func RunOn(prog *Program, passes []Pass) []Finding {
	pkgs := prog.Pkgs
	var out []Finding
	ran := make(map[string]bool, len(passes))
	keep := func(pass string, raw []Finding) {
		for _, f := range raw {
			if prog.Allowed(pass, f.Pos) {
				// The directive earned its keep: record that for the
				// unusedallow AfterPass.
				prog.markUsed(pass, f.Pos)
				continue
			}
			out = append(out, f)
		}
	}
	for _, pass := range passes {
		ran[pass.Name()] = true
		var raw []Finding
		switch pp := pass.(type) {
		case AfterPass:
			continue // deferred below, once every suppression is recorded
		case ProgramPass:
			raw = pp.RunProgram(prog)
		case PackagePass:
			for _, p := range pkgs {
				raw = append(raw, pp.Run(p)...)
			}
		}
		keep(pass.Name(), raw)
	}
	for _, pass := range passes {
		if ap, ok := pass.(AfterPass); ok {
			keep(pass.Name(), ap.RunAfter(prog, ran))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	return out
}

// Package is one parsed, type-checked package plus lint bookkeeping.
type Package struct {
	// Path is the import path, Dir the absolute directory.
	Path string
	Dir  string
	Fset *token.FileSet
	// Files holds the package's non-test files in filename order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allow map[allowKey]bool
	// allowReason maps each suppression back to the free-text reason its
	// directive gave, for the purity certificates' exemption records.
	allowReason map[allowKey]string
	// directives records every //lint:allow comment for the lintdirective
	// and unusedallow passes.
	directives []allowDirective
}

type allowKey struct {
	file string
	line int
	pass string
}

// allowDirective is one //lint:allow comment: its position and span, the
// pass names it lists, the free-text reason, and the two source lines it
// covers (its own line, and the line after its comment group).
type allowDirective struct {
	pos, end    token.Position
	start, stop token.Pos
	passes      []string
	reason      string
	cover       [2]int
}

// Allowed reports whether a //lint:allow directive suppresses pass findings
// at pos.
func (p *Package) Allowed(pass string, pos token.Position) bool {
	return p.allow[allowKey{file: pos.Filename, line: pos.Line, pass: pass}]
}

// collectAllows indexes every //lint:allow directive: a directive covers
// its own line and, so that whole-line comments can annotate the statement
// below them, the line immediately after the comment group. The reason map
// and raw directive list come back alongside for the purity certificates
// and the lintdirective/unusedallow passes.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[allowKey]bool, map[allowKey]string, []allowDirective) {
	allow := make(map[allowKey]bool)
	reasons := make(map[allowKey]string)
	var directives []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimPrefix(text, " "), "lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				endLine := fset.Position(cg.End()).Line
				d := allowDirective{
					pos:    pos,
					end:    fset.Position(c.End()),
					start:  c.Pos(),
					stop:   c.End(),
					reason: strings.Join(fields[1:], " "),
					cover:  [2]int{pos.Line, endLine + 1},
				}
				for _, pass := range strings.Split(fields[0], ",") {
					if pass == "" {
						continue
					}
					d.passes = append(d.passes, pass)
					for _, line := range d.cover {
						k := allowKey{file: pos.Filename, line: line, pass: pass}
						allow[k] = true
						if _, ok := reasons[k]; !ok {
							reasons[k] = d.reason
						}
					}
				}
				if len(d.passes) > 0 {
					directives = append(directives, d)
				}
			}
		}
	}
	return allow, reasons, directives
}

// walkStack traverses root in source order, calling fn for every node with
// the stack of its ancestors (outermost first, n excluded).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// finding builds a Finding at n's position.
func (p *Package) finding(pass string, n ast.Node, format string, args ...any) Finding {
	return Finding{
		Pos:  p.Fset.Position(n.Pos()),
		Pass: pass,
		Msg:  fmt.Sprintf(format, args...),
	}
}

// pkgFuncCall reports whether call is pkg.Func on the package named pkgPath
// (resolving through import aliases) and returns the function name.
func pkgFuncCall(p *Package, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// isMapType reports whether the expression's type (or the type it names)
// is a map.
func isMapType(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// funcDeclName renders a declaration as the Root spec syntax: "Func" for
// plain functions, "(Recv).Func" or "(*Recv).Func" for methods.
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		t, star = s.X, "*"
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return fd.Name.Name
	}
	return "(" + star + id.Name + ")." + fd.Name.Name
}
