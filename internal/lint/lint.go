// Package lint is wormsim's domain-specific static-analysis suite: a small
// analyzer framework (go/ast + go/types, stdlib only — see Loader) with
// passes that machine-enforce the invariants the paper's methodology and
// the simulator's design rest on.
//
// The passes:
//
//   - simdeterminism — the simulation core must be bit-reproducible from
//     its seeds: no math/rand, no wall clock, no iteration over maps.
//   - hotalloc — the engine's per-cycle call graph must stay allocation
//     free: no make(map), map literals or closures reachable from Step.
//   - hookguard — telemetry hook call sites must be nil-guarded so that
//     disabled telemetry stays a branch, never a panic.
//   - mutexcopy — locks must not be copied through receivers or parameters.
//   - loopcapture — go/defer closures must not capture variables the
//     enclosing loop keeps reassigning.
//   - errfmt — error strings follow Go conventions and error operands are
//     wrapped with %w.
//
// A finding can be suppressed where the flagged use is intentional by
// annotating the line (or the line above it) with a directive:
//
//	//lint:allow <pass>[,<pass>...] [reason]
//
// Findings print as "file:line: [pass] message"; cmd/wormlint exits
// non-zero if any survive, which makes the suite a CI gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the pass that produced it, and the
// message.
type Finding struct {
	Pos  token.Position
	Pass string
	Msg  string
}

// String renders the finding in the canonical "file:line: [pass] message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pass, f.Msg)
}

// Pass is one analyzer. Run inspects a loaded package and returns raw
// findings; the framework filters //lint:allow-suppressed ones afterwards.
type Pass interface {
	Name() string
	// Doc is a one-line description for -list.
	Doc() string
	Run(p *Package) []Finding
}

// DefaultPasses returns the full suite in reporting order.
func DefaultPasses() []Pass {
	return []Pass{
		NewSimDeterminism(),
		NewHotAlloc(),
		NewHookGuard(),
		MutexCopy{},
		LoopCapture{},
		ErrFmt{},
	}
}

// Run applies every pass to every package, drops suppressed findings, and
// returns the rest sorted by file, line and pass.
func Run(pkgs []*Package, passes []Pass) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, pass := range passes {
			for _, f := range pass.Run(p) {
				if p.Allowed(pass.Name(), f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
	return out
}

// Package is one parsed, type-checked package plus lint bookkeeping.
type Package struct {
	// Path is the import path, Dir the absolute directory.
	Path string
	Dir  string
	Fset *token.FileSet
	// Files holds the package's non-test files in filename order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allow map[allowKey]bool
}

type allowKey struct {
	file string
	line int
	pass string
}

// Allowed reports whether a //lint:allow directive suppresses pass findings
// at pos.
func (p *Package) Allowed(pass string, pos token.Position) bool {
	return p.allow[allowKey{file: pos.Filename, line: pos.Line, pass: pass}]
}

// collectAllows indexes every //lint:allow directive: a directive covers
// its own line and, so that whole-line comments can annotate the statement
// below them, the line immediately after the comment group.
func collectAllows(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allow := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimPrefix(text, " "), "lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				endLine := fset.Position(cg.End()).Line
				for _, pass := range strings.Split(fields[0], ",") {
					if pass == "" {
						continue
					}
					allow[allowKey{file: pos.Filename, line: pos.Line, pass: pass}] = true
					allow[allowKey{file: pos.Filename, line: endLine + 1, pass: pass}] = true
				}
			}
		}
	}
	return allow
}

// walkStack traverses root in source order, calling fn for every node with
// the stack of its ancestors (outermost first, n excluded).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// finding builds a Finding at n's position.
func (p *Package) finding(pass string, n ast.Node, format string, args ...any) Finding {
	return Finding{
		Pos:  p.Fset.Position(n.Pos()),
		Pass: pass,
		Msg:  fmt.Sprintf(format, args...),
	}
}
