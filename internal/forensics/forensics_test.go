package forensics

import (
	"strings"
	"testing"
)

// sample runs one sampled cycle over hand-built wait-for edges.
// Each edge is {head slot, holder head slot (-1 = moving), wanted channel}.
func sample(t *testing.T, a *Analyzer, cycle int64, edges [][3]int32) {
	t.Helper()
	if !a.StartCycle(cycle) {
		t.Fatalf("cycle %d not sampled at every=%d", cycle, a.SampleEvery())
	}
	for i, e := range edges {
		holderID := int64(-1)
		if e[1] >= 0 {
			holderID = int64(100 + e[1])
		}
		a.Blocked(e[0], int64(i), 0, e[2], 0, 1, e[1], holderID)
	}
	a.Resolve(cycle)
}

func TestChainBlamesRoot(t *testing.T) {
	a := New(Options{SampleEvery: 1}, 8)
	// w0 (head 10) waits on w1 (head 11) waits on w2 (head 12), whose holder
	// is moving: the whole tree roots at w2's wanted channel 5.
	sample(t, a, 0, [][3]int32{
		{10, 11, 3},
		{11, 12, 4},
		{12, -1, 5},
	})
	s := a.Summary()
	if s.BlameByChannel[5] != 3 {
		t.Errorf("root channel 5 blame %d, want 3 (whole tree)", s.BlameByChannel[5])
	}
	if s.BlameByChannel[3] != 0 || s.BlameByChannel[4] != 0 {
		t.Errorf("interior channels blamed: %v", s.BlameByChannel)
	}
	if s.Trees != 1 || s.MaxTreeSize != 3 || s.MaxTreeDepth != 3 {
		t.Errorf("tree stats: %+v", s)
	}
	if s.AttributedFraction() != 1 {
		t.Errorf("attribution %.2f", s.AttributedFraction())
	}
}

// TestConvergingChainsShareRoot: two waiters on the same blocked holder form
// one tree of size 3, resolved with memoization (the second chain must reuse
// the first chain's root).
func TestConvergingChainsShareRoot(t *testing.T) {
	a := New(Options{SampleEvery: 1}, 8)
	sample(t, a, 0, [][3]int32{
		{10, 12, 2},
		{11, 12, 3},
		{12, -1, 6},
	})
	s := a.Summary()
	if s.BlameByChannel[6] != 3 {
		t.Errorf("blame %v, want all 3 on channel 6", s.BlameByChannel)
	}
	if s.Trees != 1 || s.MaxTreeSize != 3 || s.MaxTreeDepth != 2 {
		t.Errorf("tree stats: trees=%d size=%d depth=%d", s.Trees, s.MaxTreeSize, s.MaxTreeDepth)
	}
}

func TestHolderNotBlockedIsRoot(t *testing.T) {
	a := New(Options{SampleEvery: 1}, 8)
	// w0 waits on a holder whose head slot 42 recorded nothing this cycle
	// (the holder routed fine): w0's wanted channel is the root.
	sample(t, a, 0, [][3]int32{{10, 42, 7}})
	s := a.Summary()
	if s.BlameByChannel[7] != 1 || s.Trees != 1 {
		t.Errorf("summary %+v", s)
	}
}

func TestWaitForCycleDetected(t *testing.T) {
	a := New(Options{SampleEvery: 1}, 8)
	// w0 -> w1 -> w2 -> w0 plus a dangler w3 waiting into the cycle.
	sample(t, a, 0, [][3]int32{
		{10, 11, 3},
		{11, 12, 4},
		{12, 10, 1},
		{13, 10, 2},
	})
	s := a.Summary()
	if s.WaitCycles != 1 {
		t.Fatalf("wait cycles %d, want 1", s.WaitCycles)
	}
	if len(s.LastWaitCycle) != 3 {
		t.Fatalf("cycle witness %+v, want 3 edges", s.LastWaitCycle)
	}
	// Canonical root label: the minimum wanted channel in the cycle.
	if s.BlameByChannel[1] != 4 {
		t.Errorf("blame %v, want all 4 worms on cycle root channel 1", s.BlameByChannel)
	}
	if s.Trees != 1 || s.MaxTreeSize != 4 {
		t.Errorf("trees=%d size=%d", s.Trees, s.MaxTreeSize)
	}
	if rep := a.StallReport(); !strings.Contains(rep, "wait-for cycle") {
		t.Errorf("stall report missing cycle witness:\n%s", rep)
	}
}

func TestSamplingSkipsAndWeights(t *testing.T) {
	a := New(Options{SampleEvery: 4}, 8)
	for c := int64(0); c < 8; c++ {
		sampled := a.StartCycle(c)
		if want := c%4 == 0; sampled != want {
			t.Fatalf("cycle %d sampled=%v", c, sampled)
		}
		// Blocked outside a sampled cycle must be ignored, not crash.
		a.Blocked(10, 1, 0, 3, 0, 1, -1, -1)
		if sampled {
			a.Resolve(c)
		}
	}
	s := a.Summary()
	if s.Samples != 2 || s.Cycles != 8 {
		t.Fatalf("samples=%d cycles=%d", s.Samples, s.Cycles)
	}
	// Two sampled observations, each standing for 4 cycles.
	if s.BlockedObserved != 8 || s.BlameByChannel[3] != 8 {
		t.Errorf("observed=%d blame=%v", s.BlockedObserved, s.BlameByChannel)
	}
}

func TestAnatomyComponents(t *testing.T) {
	a := New(Options{}, 4)
	// total 100 = inject 10 + stalls 20 + ideal 25 + behind 45.
	a.Delivered(1, 10, 1000, 1010, 1100, 20, 25)
	s := a.Summary()
	if len(s.Anatomy) != 2 {
		t.Fatalf("anatomy classes %d, want 2 (class 0 empty + class 1)", len(s.Anatomy))
	}
	ca := s.Anatomy[1]
	if ca.Delivered != 1 || ca.MeanHops != 10 || ca.MeanTotal != 100 {
		t.Fatalf("class summary %+v", ca)
	}
	for name, got := range map[string]float64{
		"inject": ca.Inject.Mean, "alloc": ca.Alloc.Mean,
		"behind": ca.Behind.Mean, "drain": ca.Drain.Mean,
	} {
		want := map[string]float64{"inject": 10, "alloc": 20, "behind": 45, "drain": 25}[name]
		if got != want {
			t.Errorf("%s mean %g, want %g", name, got, want)
		}
	}
	if ca.Behind.Share < 0.44 || ca.Behind.Share > 0.46 {
		t.Errorf("behind share %g, want 0.45", ca.Behind.Share)
	}
	if len(ca.Drain.Buckets) == 0 || ca.Drain.Buckets[len(ca.Drain.Buckets)-1].Count != 1 {
		t.Errorf("drain buckets %+v", ca.Drain.Buckets)
	}
}

func TestAnatomyClampsNegativeResidual(t *testing.T) {
	a := New(Options{}, 4)
	// ideal exceeds the measured total (cannot happen in the engine; the
	// clamp keeps the histogram honest anyway).
	a.Delivered(0, 2, 0, 0, 10, 0, 20)
	if got := a.Summary().Anatomy[0].Behind.Mean; got != 0 {
		t.Errorf("behind mean %g, want clamped 0", got)
	}
}

func TestTopRootsOrdering(t *testing.T) {
	a := New(Options{SampleEvery: 1}, 8)
	sample(t, a, 0, [][3]int32{
		{10, -1, 5}, {11, -1, 5}, {12, -1, 2}, {13, -1, 7},
	})
	roots := a.Summary().TopRoots(10)
	if len(roots) != 3 {
		t.Fatalf("roots %+v", roots)
	}
	if roots[0].Ch != 5 || roots[0].Blame != 2 || roots[1].Ch != 2 || roots[2].Ch != 7 {
		t.Errorf("ordering %+v", roots)
	}
	if roots[0].Share != 0.5 {
		t.Errorf("share %g", roots[0].Share)
	}
}

func TestSummaryRenders(t *testing.T) {
	a := New(Options{SampleEvery: 1}, 8)
	sample(t, a, 0, [][3]int32{{10, -1, 5}})
	a.Delivered(0, 4, 0, 2, 40, 3, 19)
	out := a.Summary().RenderString()
	for _, want := range []string{"congestion forensics", "top blame roots", "ch 5", "latency anatomy", "drain (ideal)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestStallReportEmptyBeforeSample: the watchdog must get "" (and fall back
// to the raw dump) before the first sample.
func TestStallReportEmptyBeforeSample(t *testing.T) {
	a := New(Options{}, 4)
	if rep := a.StallReport(); rep != "" {
		t.Errorf("unexpected report %q", rep)
	}
}

func TestZeroAllocSteadyStateResolve(t *testing.T) {
	a := New(Options{SampleEvery: 1}, 16)
	edges := [][3]int32{
		{10, 11, 3}, {11, 12, 4}, {12, 10, 1}, {20, 21, 6}, {21, -1, 7},
	}
	run := func(c int64) {
		a.StartCycle(c)
		for i, e := range edges {
			a.Blocked(e[0], int64(i), 0, e[2], 0, 1, e[1], int64(e[1]))
		}
		a.Resolve(c)
	}
	for c := int64(0); c < 10; c++ {
		run(c) // warm up scratch growth
	}
	avg := testing.AllocsPerRun(100, func() { run(11) })
	if avg != 0 {
		t.Errorf("steady-state sample allocates %.1f times", avg)
	}
}
