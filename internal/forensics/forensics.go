// Package forensics is the simulator's congestion post-mortem engine: a
// sampling analyzer that periodically reconstructs the wait-for graph from
// the engine's virtual-channel state (blocked worm -> worm holding the
// virtual channel it wants), propagates blame along holder chains so every
// observed blocked cycle is attributed to a root-cause channel (congestion
// trees with sizes and depths), detects runtime wait-for cycles as a
// near-deadlock early warning, and decomposes every delivered worm's latency
// into inject-queue wait, virtual-channel allocation stalls, blocked-behind
// time and ideal drain time, aggregated per routing class.
//
// The network engine holds a *Analyzer and guards every hook with a nil
// check, so a detached analyzer costs one predictable branch per hook and an
// attached one never alters results (TestForensicsRunIsBitIdentical). The
// per-cycle path is allocation-free in steady state and map-free by
// construction — wait-for records are keyed by dense virtual-channel slot
// ids through generation-stamped arrays, the same technique the engine's
// half-duplex arbitration uses — so it passes wormlint's hotalloc gate on
// (*Network).Step's call graph.
//
// The wait-for graph follows each blocked worm's primary edge: the first
// admissible candidate channel in routing order, whose target virtual
// channel is necessarily occupied (route fails only when every admissible
// candidate is busy). For deterministic algorithms (e-cube) that edge is the
// worm's only option, so trees and cycles are exact; for adaptive algorithms
// a worm may later escape through another candidate, so a detected wait-for
// cycle is an early warning of pathological coupling rather than proof of
// deadlock — the live complement of the static CDG certificates.
package forensics

import (
	"fmt"
	"strings"

	"wormsim/internal/stats"
)

// DefaultSampleEvery is the sampling period when Options does not set one:
// frequent enough to track congestion-tree churn, sparse enough that the
// analyzer's overhead stays well under the 5% budget (forensics/* benches).
const DefaultSampleEvery = 64

// Options selects what an Analyzer records. The zero value samples every
// DefaultSampleEvery cycles.
type Options struct {
	// SampleEvery reconstructs the wait-for graph every this many cycles.
	// 1 analyzes every cycle, making blame attribution exact (it then equals
	// telemetry's head-blocked accounting); larger values estimate blame by
	// weighting each sampled observation by the period.
	SampleEvery int64 `json:",omitempty"`
}

// withDefaults fills unset option fields.
func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	return o
}

// record is one wait-for edge captured during a sampled cycle: a blocked
// worm (its head buffer's vc slot), the virtual channel it wants, and the
// head slot of the worm holding that channel (-1 when the holder is moving
// or draining, which makes the wanted channel a congestion-tree root).
type record struct {
	head     int32
	holder   int32
	msg      int64
	holderID int64
	wantCh   int32
	width    int32
	wantVC   int16
	class    int16
}

// CycleEdge is one edge of a detected wait-for cycle: Msg's header wants
// virtual channel (Ch, VC), which WaitsFor currently holds.
type CycleEdge struct {
	Msg      int64
	WaitsFor int64
	Ch       int
	VC       int
}

// classAnat accumulates latency anatomy for one routing class.
type classAnat struct {
	delivered int64
	hops      int64
	totalSum  float64
	inject    stats.Histogram
	alloc     stats.Histogram
	behind    stats.Histogram
	drain     stats.Histogram
}

// Analyzer reconstructs wait-for graphs and latency anatomy for one run. It
// is not safe for concurrent use; each run owns its analyzer (core.Run
// builds one per point from shared Options). All per-cycle state lives in
// reused generation-stamped slices, so steady-state sampling allocates
// nothing.
type Analyzer struct {
	opts     Options
	channels int

	cycles   int64
	samples  int64
	sampling bool

	// The current sample's wait-for records. recAt[slot] is the record index
	// of the worm whose head sits in vc slot `slot`, valid only when
	// recGen[slot] == gen — a generation stamp per sample replaces clearing.
	recs   []record
	recAt  []int32
	recGen []uint32
	gen    uint32

	// Resolution scratch, parallel to recs (grown on demand, reused).
	state   []uint8 // 0 unvisited, 1 on the chain stack, 2 resolved
	rootCh  []int32
	rootRec []int32
	depth   []int32
	treeSz  []int32
	stack   []int32

	// Accumulators across samples. blame[ch] is the estimated number of
	// blocked worm-cycles whose congestion tree is rooted at channel ch;
	// roots[ch] counts tree-root occurrences of ch across samples.
	blame        []int64
	roots        []int64
	observed     int64
	attributed   int64
	unattributed int64
	curUnattr    int64
	trees        int64
	waitCycles   int64
	treeSizeSum  int64
	maxTreeSize  int64
	maxTreeDepth int64
	widthSum     int64

	// Last-sample state, rendered into the deadlock watchdog's report.
	lastCycle     int64
	lastBlocked   int
	lastRootCh    int32
	lastRootSize  int32
	lastMaxDepth  int32
	lastWaitCycle []CycleEdge
	haveWaitCycle bool

	anat []classAnat
}

// New returns an analyzer for a network with the given number of physical
// channel slots.
func New(opts Options, channelSlots int) *Analyzer {
	return &Analyzer{
		opts:       opts.withDefaults(),
		channels:   channelSlots,
		blame:      make([]int64, channelSlots),
		roots:      make([]int64, channelSlots),
		lastRootCh: -1,
	}
}

// Channels returns the channel-slot count the analyzer was sized for, so an
// engine can validate a caller-supplied analyzer.
func (a *Analyzer) Channels() int { return a.channels }

// SampleEvery returns the effective sampling period.
func (a *Analyzer) SampleEvery() int64 { return a.opts.SampleEvery }

// StartCycle opens one simulation cycle and reports whether this cycle is
// sampled: if so, the engine records a wait-for edge for every head-blocked
// worm (Blocked) and then calls Resolve in the same cycle, while the slot
// ids in the records are still live.
func (a *Analyzer) StartCycle(cycle int64) bool {
	a.cycles++
	a.sampling = cycle%a.opts.SampleEvery == 0
	if a.sampling {
		a.recs = a.recs[:0]
		a.gen++
		a.curUnattr = 0
	}
	return a.sampling
}

// Blocked records one wait-for edge of the current sample: the worm whose
// head sits in vc slot head failed virtual-channel allocation this cycle
// and primarily waits for (wantCh, wantVC), held by the worm whose head is
// at slot holderHead (-1 when the holder is moving or draining). width is
// the number of admissible-but-busy candidate channels. Calls outside a
// sampled cycle are ignored, so the engine may call it unconditionally from
// the allocation loop.
func (a *Analyzer) Blocked(head int32, msg int64, class int, wantCh int32, wantVC int16, width int32, holderHead int32, holderID int64) {
	if !a.sampling {
		return
	}
	for int(head) >= len(a.recAt) {
		a.recAt = append(a.recAt, 0)
		a.recGen = append(a.recGen, 0)
	}
	a.recAt[head] = int32(len(a.recs))
	a.recGen[head] = a.gen
	a.recs = append(a.recs, record{
		head: head, holder: holderHead, msg: msg, holderID: holderID,
		wantCh: wantCh, width: width, wantVC: wantVC, class: int16(class),
	})
}

// BlockedUnattributable records a head-blocked worm with no admissible
// candidate channel to wait on — impossible under minimal routing on the
// supported grids, counted rather than dropped so the attribution fraction
// stays honest if a future algorithm violates that.
func (a *Analyzer) BlockedUnattributable() {
	if a.sampling {
		a.curUnattr++
	}
}

// Resolve closes a sampled cycle: it follows every record's holder chain to
// a congestion-tree root (a wanted channel whose holder is making progress,
// or a wait-for cycle), then charges each blocked worm's share of blame to
// its root channel. Each record stands for SampleEvery blocked worm-cycles.
// Chains are walked once: resolved records memoize their root, so the pass
// is linear in the number of blocked worms.
func (a *Analyzer) Resolve(cycle int64) {
	a.samples++
	a.lastCycle = cycle
	a.lastBlocked = len(a.recs) + int(a.curUnattr)
	a.haveWaitCycle = false
	a.lastRootCh = -1
	a.lastRootSize = 0
	a.lastMaxDepth = 0
	every := a.opts.SampleEvery
	a.observed += every * a.curUnattr
	a.unattributed += every * a.curUnattr
	n := len(a.recs)
	if n == 0 {
		return
	}
	for len(a.state) < n {
		a.state = append(a.state, 0)
		a.rootCh = append(a.rootCh, 0)
		a.rootRec = append(a.rootRec, 0)
		a.depth = append(a.depth, 0)
		a.treeSz = append(a.treeSz, 0)
	}
	for i := 0; i < n; i++ {
		a.state[i] = 0
		a.treeSz[i] = 0
	}
	for i := 0; i < n; i++ {
		if a.state[i] == 2 {
			continue
		}
		a.stack = a.stack[:0]
		cur := int32(i)
		var rCh, rRec, baseDepth int32
		for {
			if a.state[cur] == 2 { // memoized suffix
				rCh, rRec, baseDepth = a.rootCh[cur], a.rootRec[cur], a.depth[cur]
				break
			}
			if a.state[cur] == 1 { // the chain closed on itself
				rCh, rRec, baseDepth = a.resolveWaitCycle(cur)
				break
			}
			a.state[cur] = 1
			a.stack = append(a.stack, cur)
			h := a.recs[cur].holder
			if h < 0 || int(h) >= len(a.recGen) || a.recGen[h] != a.gen {
				// The holder is moving, draining, or not itself blocked this
				// cycle: the wanted channel is where progress resumes — the
				// congestion-tree root.
				rCh, rRec, baseDepth = a.recs[cur].wantCh, cur, 0
				break
			}
			cur = a.recAt[h]
		}
		d := baseDepth
		for k := len(a.stack) - 1; k >= 0; k-- {
			j := a.stack[k]
			if a.state[j] == 2 {
				continue // cycle members were resolved in resolveWaitCycle
			}
			d++
			a.state[j] = 2
			a.rootCh[j] = rCh
			a.rootRec[j] = rRec
			a.depth[j] = d
		}
	}
	// Accumulate: tree sizes at root records, blame per root channel.
	for i := 0; i < n; i++ {
		a.treeSz[a.rootRec[i]]++
	}
	var bestSz int32
	for i := 0; i < n; i++ {
		a.blame[a.rootCh[i]] += every
		a.observed += every
		a.attributed += every
		a.widthSum += every * int64(a.recs[i].width)
		if int64(a.depth[i]) > a.maxTreeDepth {
			a.maxTreeDepth = int64(a.depth[i])
		}
		if a.depth[i] > a.lastMaxDepth {
			a.lastMaxDepth = a.depth[i]
		}
		if a.rootRec[i] != int32(i) {
			continue
		}
		sz := a.treeSz[i]
		a.trees++
		a.roots[a.rootCh[i]]++
		a.treeSizeSum += int64(sz)
		if int64(sz) > a.maxTreeSize {
			a.maxTreeSize = int64(sz)
		}
		if sz > bestSz {
			bestSz = sz
			a.lastRootCh = a.rootCh[i]
			a.lastRootSize = sz
		}
	}
}

// resolveWaitCycle handles a chain that closed on itself: the stack suffix
// from entry upward is a wait-for cycle. Members are resolved in place with
// the minimum wanted channel as the canonical root label and depth 1 (they
// jointly are the tree root); the most recent cycle is kept as a witness.
func (a *Analyzer) resolveWaitCycle(entry int32) (rootCh, rootRec, baseDepth int32) {
	pos := len(a.stack) - 1
	for a.stack[pos] != entry {
		pos--
	}
	members := a.stack[pos:]
	rootCh = a.recs[members[0]].wantCh
	rootRec = members[0]
	for _, j := range members {
		if a.recs[j].wantCh < rootCh {
			rootCh = a.recs[j].wantCh
		}
		if j < rootRec {
			rootRec = j
		}
	}
	a.waitCycles++
	a.haveWaitCycle = true
	a.lastWaitCycle = a.lastWaitCycle[:0]
	for _, j := range members {
		r := &a.recs[j]
		a.lastWaitCycle = append(a.lastWaitCycle, CycleEdge{
			Msg: r.msg, WaitsFor: r.holderID, Ch: int(r.wantCh), VC: int(r.wantVC),
		})
	}
	for _, j := range members {
		a.state[j] = 2
		a.rootCh[j] = rootCh
		a.rootRec[j] = rootRec
		a.depth[j] = 1
	}
	return rootCh, rootRec, 1
}

// Delivered records one delivered worm's latency anatomy. ideal is the
// worm's unloaded latency (eq. (2)'s ml + d - 1, plus router pipeline
// delay): the drain component. Inject wait is the time from generation to
// first-hop virtual-channel allocation; alloc stalls count cycles the
// header bid and lost at intermediate nodes; the remainder — time spent
// blocked behind a congestion tree's body flits and arbitration — is the
// blocked-behind component.
func (a *Analyzer) Delivered(class, hops int, genTime, firstAlloc, deliverTime int64, headStalls int32, ideal int64) {
	for len(a.anat) <= class {
		a.anat = append(a.anat, classAnat{})
	}
	ca := &a.anat[class]
	total := deliverTime - genTime
	inj := firstAlloc - genTime
	stall := int64(headStalls)
	behind := total - inj - stall - ideal
	if behind < 0 {
		behind = 0
	}
	ca.delivered++
	ca.hops += int64(hops)
	ca.totalSum += float64(total)
	ca.inject.Add(float64(inj))
	ca.alloc.Add(float64(stall))
	ca.behind.Add(float64(behind))
	ca.drain.Add(float64(ideal))
}

// StallReport renders the last sample's congestion-tree state for the
// deadlock watchdog: the dominant root and any wait-for cycle witness. It
// returns "" before the first sample. Called on the engine's Step path, so
// it builds the string with plain loops (no maps, no closures).
func (a *Analyzer) StallReport() string {
	if a.samples == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  blame (sampled at cycle %d): %d worms head-blocked", a.lastCycle, a.lastBlocked)
	if a.lastRootCh >= 0 {
		fmt.Fprintf(&b, "; dominant congestion tree rooted at ch %d (%d worms, depth <= %d)",
			a.lastRootCh, a.lastRootSize, a.lastMaxDepth)
	}
	b.WriteByte('\n')
	if a.haveWaitCycle {
		b.WriteString("  wait-for cycle (near-deadlock):")
		for _, e := range a.lastWaitCycle {
			fmt.Fprintf(&b, " worm %d -(ch %d vc %d)->", e.Msg, e.Ch, e.VC)
		}
		fmt.Fprintf(&b, " worm %d\n", a.lastWaitCycle[0].Msg)
	}
	return b.String()
}
