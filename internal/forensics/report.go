package forensics

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wormsim/internal/stats"
)

// ComponentStats summarizes one latency-anatomy component of a routing
// class. Share is the component's fraction of the class's total latency
// mass (the four component shares sum to <= 1; arbitration residue inside
// the blocked-behind clamp accounts for the rest). Buckets is the
// cumulative histogram in Prometheus form, for /metrics exposition.
type ComponentStats struct {
	Mean    float64
	P50     float64
	P95     float64
	Max     float64
	Share   float64
	Buckets []stats.CumBucket `json:",omitempty"`
}

// componentStats flattens one histogram against the class's total latency
// mass.
func componentStats(h *stats.Histogram, totalSum float64) ComponentStats {
	c := ComponentStats{Mean: h.Mean(), Max: h.Max(), Buckets: h.Cumulative()}
	q := h.Quantiles(0.5, 0.95)
	c.P50, c.P95 = q[0], q[1]
	if totalSum > 0 {
		c.Share = h.Mean() * float64(h.Count()) / totalSum
	}
	return c
}

// ClassAnatomy is the latency decomposition of one routing class: where the
// delivered worms of that class spent their cycles. Inject is source-queue
// wait (generation to first-hop virtual-channel allocation), Alloc is
// header allocation stalls at intermediate nodes, Behind is time blocked
// behind congestion-tree body flits and channel arbitration, Drain is the
// unloaded pipeline latency (eq. (2)).
type ClassAnatomy struct {
	Class     int
	Delivered int64
	MeanHops  float64
	MeanTotal float64
	Inject    ComponentStats
	Alloc     ComponentStats
	Behind    ComponentStats
	Drain     ComponentStats
}

// Root is one congestion-tree root channel ranked by blame mass.
type Root struct {
	// Ch is the dense physical channel slot.
	Ch int
	// Blame is the estimated blocked worm-cycles attributed to this root.
	Blame int64
	// Roots counts tree-root occurrences across samples.
	Roots int64
	// Share is Blame over all attributed blocked cycles.
	Share float64
}

// Summary is the JSON-friendly aggregation of a run's congestion forensics,
// attached to core.Result. All counts weighted by SampleEvery estimate
// whole-run totals from the sampled cycles (exact when SampleEvery is 1).
type Summary struct {
	// SampleEvery is the sampling period used; Cycles the cycles observed;
	// Samples the wait-for graph reconstructions performed.
	SampleEvery int64
	Cycles      int64
	Samples     int64
	// BlockedObserved estimates total head-blocked worm-cycles;
	// Attributed of those were traced to a root channel (Unattributed
	// covers worms with no admissible busy candidate — structurally
	// impossible under minimal routing, kept for honesty).
	BlockedObserved int64
	Attributed      int64
	Unattributed    int64
	// Trees counts congestion-tree observations; WaitCycles sampled
	// wait-for cycle occurrences (near-deadlock events).
	Trees        int64
	WaitCycles   int64
	MeanTreeSize float64
	MaxTreeSize  int64
	MaxTreeDepth int64
	// MeanWaitWidth is the mean number of admissible-but-busy candidate
	// channels per blocked worm (1 for deterministic routing; higher means
	// adaptivity was exhausted, not unused).
	MeanWaitWidth float64
	// BlameByChannel[ch] is the blame mass of channel slot ch;
	// RootsByChannel[ch] its tree-root occurrence count.
	BlameByChannel []int64
	RootsByChannel []int64
	// LastWaitCycle is the most recent wait-for cycle witness, if any.
	LastWaitCycle []CycleEdge `json:",omitempty"`
	// Anatomy is the per-routing-class latency decomposition.
	Anatomy []ClassAnatomy
}

// Summary snapshots the analyzer's accumulated state. Everything in the
// result is a copy owned by the caller.
func (a *Analyzer) Summary() *Summary {
	s := &Summary{
		SampleEvery:     a.opts.SampleEvery,
		Cycles:          a.cycles,
		Samples:         a.samples,
		BlockedObserved: a.observed,
		Attributed:      a.attributed,
		Unattributed:    a.unattributed,
		Trees:           a.trees,
		WaitCycles:      a.waitCycles,
		MaxTreeSize:     a.maxTreeSize,
		MaxTreeDepth:    a.maxTreeDepth,
		BlameByChannel:  append([]int64(nil), a.blame...),
		RootsByChannel:  append([]int64(nil), a.roots...),
	}
	if a.trees > 0 {
		s.MeanTreeSize = float64(a.treeSizeSum) / float64(a.trees)
	}
	if a.attributed > 0 {
		s.MeanWaitWidth = float64(a.widthSum) / float64(a.attributed)
	}
	if len(a.lastWaitCycle) > 0 {
		s.LastWaitCycle = append([]CycleEdge(nil), a.lastWaitCycle...)
	}
	for class := range a.anat {
		ca := &a.anat[class]
		if ca.delivered == 0 {
			s.Anatomy = append(s.Anatomy, ClassAnatomy{Class: class})
			continue
		}
		s.Anatomy = append(s.Anatomy, ClassAnatomy{
			Class:     class,
			Delivered: ca.delivered,
			MeanHops:  float64(ca.hops) / float64(ca.delivered),
			MeanTotal: ca.totalSum / float64(ca.delivered),
			Inject:    componentStats(&ca.inject, ca.totalSum),
			Alloc:     componentStats(&ca.alloc, ca.totalSum),
			Behind:    componentStats(&ca.behind, ca.totalSum),
			Drain:     componentStats(&ca.drain, ca.totalSum),
		})
	}
	return s
}

// AttributedFraction is the share of observed blocked cycles traced to a
// root channel (1 when nothing was observed blocked).
func (s *Summary) AttributedFraction() float64 {
	if s.BlockedObserved == 0 {
		return 1
	}
	return float64(s.Attributed) / float64(s.BlockedObserved)
}

// TopRoots returns the k channels with the largest blame mass, heaviest
// first, ties broken by channel index for determinism. Channels with zero
// blame are omitted.
func (s *Summary) TopRoots(k int) []Root {
	idx := make([]int, 0, len(s.BlameByChannel))
	for ch, b := range s.BlameByChannel {
		if b > 0 {
			idx = append(idx, ch)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if s.BlameByChannel[ia] != s.BlameByChannel[ib] {
			return s.BlameByChannel[ia] > s.BlameByChannel[ib]
		}
		return ia < ib
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Root, 0, k)
	for _, ch := range idx[:k] {
		r := Root{Ch: ch, Blame: s.BlameByChannel[ch], Roots: s.RootsByChannel[ch]}
		if s.Attributed > 0 {
			r.Share = float64(r.Blame) / float64(s.Attributed)
		}
		out = append(out, r)
	}
	return out
}

// Render writes a human-readable forensics report, the CLI's -forensics
// output: attribution totals, the top root channels, and the per-class
// latency anatomy ("where did my 400-cycle latency go").
func (s *Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "congestion forensics (sampled every %d cycles, %d samples over %d cycles)\n",
		s.SampleEvery, s.Samples, s.Cycles)
	fmt.Fprintf(w, "  head-blocked worm-cycles observed %d, attributed %d (%.1f%%)\n",
		s.BlockedObserved, s.Attributed, 100*s.AttributedFraction())
	fmt.Fprintf(w, "  congestion trees %d (mean size %.1f, max %d, max depth %d), wait-for cycles %d, mean wait width %.2f\n",
		s.Trees, s.MeanTreeSize, s.MaxTreeSize, s.MaxTreeDepth, s.WaitCycles, s.MeanWaitWidth)
	if roots := s.TopRoots(8); len(roots) > 0 {
		fmt.Fprintf(w, "  top blame roots:\n")
		for _, r := range roots {
			fmt.Fprintf(w, "    ch %-5d blame %-10d (%.1f%% of attributed, root of %d trees)\n",
				r.Ch, r.Blame, 100*r.Share, r.Roots)
		}
	}
	if len(s.LastWaitCycle) > 0 {
		fmt.Fprintf(w, "  last wait-for cycle witness:")
		for _, e := range s.LastWaitCycle {
			fmt.Fprintf(w, " worm %d -(ch %d vc %d)->", e.Msg, e.Ch, e.VC)
		}
		fmt.Fprintf(w, " worm %d\n", s.LastWaitCycle[0].Msg)
	}
	for _, ca := range s.Anatomy {
		if ca.Delivered == 0 {
			continue
		}
		fmt.Fprintf(w, "  class %d latency anatomy (%d delivered, %.1f mean hops, %.1f mean cycles):\n",
			ca.Class, ca.Delivered, ca.MeanHops, ca.MeanTotal)
		renderComponent(w, "inject wait", ca.Inject)
		renderComponent(w, "alloc stall", ca.Alloc)
		renderComponent(w, "blocked behind", ca.Behind)
		renderComponent(w, "drain (ideal)", ca.Drain)
	}
}

// renderComponent writes one anatomy component line.
func renderComponent(w io.Writer, name string, c ComponentStats) {
	fmt.Fprintf(w, "    %-14s mean %8.1f  p50 %8.1f  p95 %8.1f  max %8.0f  (%.1f%% of latency)\n",
		name, c.Mean, c.P50, c.P95, c.Max, 100*c.Share)
}

// RenderString is Render into a string.
func (s *Summary) RenderString() string {
	var b strings.Builder
	s.Render(&b)
	return b.String()
}
